// Package serve implements the HTTP serving layer of the BEAS daemon: the
// online half of the paper's Fig. 2 architecture as reusable handlers, so
// cmd/beasd (the production daemon) and internal/bench (the end-to-end HTTP
// latency harness) drive the exact same code.
//
// Three request paths share one concurrency-safe System:
//
//   - POST /query answers a single query synchronously on the caller's
//     connection goroutine — the lowest-latency path. The request's context
//     is the execution context: a disconnected client aborts the query
//     mid-flight.
//   - POST /stream answers a single query as NDJSON: one columns line, one
//     line per answer row as chunks are handed over by the streaming
//     executor, and a final summary line carrying the accuracy bound and
//     access stats. Rows are flushed incrementally — the HTTP response is
//     never buffered whole (the answer set itself is still assembled in
//     memory first, bounded by the α·|D| budget, because η is certified
//     over the complete set) — and client disconnect cancels execution.
//   - POST /batch pipelines many queries through a bounded request queue
//     drained by a fixed worker pool. Admission is budget-weighted: each
//     job weighs its estimated access budget ⌈α·|D|⌉, and jobs beyond the
//     configured in-flight budget cap are rejected immediately — one giant
//     batch cannot monopolise the worker pool ahead of small interactive
//     queries. Every request carries a deadline that travels into the
//     executor as a context deadline: jobs whose deadline passes while
//     queued are failed without executing, and jobs whose deadline expires
//     mid-flight are abandoned at the executor's next cancellation point
//     instead of burning a worker to completion.
//
// POST /snapshot is the operator's durability knob: it checkpoints a
// persisted system into its own directory (truncating the WAL) or writes a
// standalone snapshot copy to a requested directory. GET /healthz reports
// liveness plus dataset shape; GET /stats reports serving counters, queue
// pressure (including the in-flight budget weight), per-tag query
// attribution, plan-cache effectiveness, process uptime, per-ladder
// resident footprints and — when the system is persisted — the snapshot/WAL
// counters of the durability layer.
//
// When Config.Cluster is set, the node's /internal/fetch RPC (see
// internal/cluster) rides the same mux, /stats grows a cluster section,
// open peer circuits fail /readyz, and a query that dies on an unreachable
// peer answers 502 with the typed *cluster.PeerError text.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	beas "repro"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// Config assembles a Server. System is required; zero values elsewhere get
// the documented defaults.
type Config struct {
	// System is the shared query engine (immutable database + indices).
	System *beas.System
	// DefaultAlpha is used when a request omits alpha (default 0.01).
	DefaultAlpha float64
	// MaxRows caps answer rows returned per /query and per /batch entry
	// (default 1000). /stream is uncapped: it exists to deliver large
	// answers incrementally.
	MaxRows int
	// ExecOptions are prepended to every query's options (before the
	// request's own alpha and tag), letting the embedder pin an execution
	// strategy — the HTTP latency harness uses this to time the legacy
	// lazy-fetch path without any global toggles.
	ExecOptions []beas.Option
	// Dataset, DBSize, Relations and Shards describe the loaded data for
	// /healthz. DBSize also sizes the default batch BudgetCap.
	Dataset   string
	DBSize    int
	Relations int
	Shards    int

	// QueueDepth bounds the /batch request queue; enqueue attempts beyond
	// it are rejected with a per-request error (default 256).
	QueueDepth int
	// Workers is the batch worker-pool size (default GOMAXPROCS).
	Workers int
	// MaxBatch caps queries per /batch call (default 256).
	MaxBatch int
	// DefaultDeadline applies to batch requests that set no deadlineMs
	// (default 30s).
	DefaultDeadline time.Duration
	// BudgetCap bounds the summed estimated budgets ⌈α·|D|⌉ of admitted
	// but unfinished /batch jobs (weighted admission). 0 derives 4×DBSize
	// when DBSize is known and otherwise disables the weight gate. One
	// job is always admitted when nothing else is in flight, so a single
	// over-cap query stays servable.
	BudgetCap int

	// Brownout tunes the overload controller (see brownout.go). The zero
	// value is automatic control with defaults; Mode "off" restores the
	// reject-only behaviour of earlier versions.
	Brownout BrownoutConfig

	// Cluster, when non-nil, makes this server a member of a multi-node
	// deployment: its /internal/fetch RPC is mounted on the same mux, a
	// *cluster.PeerError maps to 502 Bad Gateway, open peer circuits fail
	// /readyz and /stats grows a cluster section. The embedder still wires
	// the node's Fetcher into ExecOptions (beas.WithRemoteFetcher) — serve
	// only exposes the node, it does not reroute execution by itself.
	Cluster *cluster.Node

	// Registry receives every serving instrument and is mounted at GET
	// /metrics in Prometheus text exposition format. The serving counters
	// live IN the registry (handlers increment registry-owned atomics), so
	// /stats and /metrics cannot disagree. Nil builds a private registry.
	Registry *obs.Registry
	// Audit, when non-nil, receives one structured AuditRecord per query
	// on every serving surface (/query, /stream, each /batch entry),
	// successes and failures alike. Recording never blocks the serving
	// path: a saturated ring drops and counts (see obs.AuditLog).
	Audit *obs.AuditLog
	// SlowQuery, when positive, traces every query and logs the full span
	// tree of any that took at least this long. Tracing cannot be enabled
	// retroactively, so the threshold prices a small always-on overhead
	// (see BENCH_10.json obsbench) for forensic detail on the outliers.
	SlowQuery time.Duration
	// Logger receives the server's structured events (contained panics,
	// slow queries, response-encode failures). Nil defaults to text lines
	// on stderr, matching the log.Printf behaviour it replaces.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.DefaultAlpha <= 0 {
		c.DefaultAlpha = 0.01
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.BudgetCap <= 0 {
		if c.DBSize > 0 {
			c.BudgetCap = 4 * c.DBSize
		} else {
			c.BudgetCap = math.MaxInt
		}
	}
	return c
}

// QueryRequest is the body of one /query or /stream call and one element
// of a /batch call's queries array.
type QueryRequest struct {
	SQL   string  `json:"sql"`
	Alpha float64 `json:"alpha"`
	// MinAlpha is this request's accuracy SLO: the floor below which
	// brownout degradation may not shrink its effective α (optional;
	// defaults to the server-wide BrownoutConfig.MinAlpha).
	MinAlpha float64 `json:"minAlpha,omitempty"`
	// Tag attributes the query in the per-tag stats of /stats (optional).
	Tag string `json:"tag,omitempty"`
}

// QueryResponse is the answer payload of one query. Alpha is the ACHIEVED
// resource ratio: under brownout it can be lower than the request's, with
// Degraded set and RequestedAlpha carrying the original ask — Eta still
// certifies the degraded answer.
type QueryResponse struct {
	Columns   []string   `json:"columns"`
	Tuples    [][]string `json:"tuples"`
	Rows      int        `json:"rows"`
	Truncated bool       `json:"rowsTruncated,omitempty"` // response capped at MaxRows
	Eta       float64    `json:"eta"`
	Exact     bool       `json:"exact"`
	Alpha     float64    `json:"alpha"`
	Accessed  int        `json:"accessed"`
	Budget    int        `json:"budget"`
	CacheHit  bool       `json:"cacheHit"`
	PlanGenMS float64    `json:"planGenMs"`
	ServedMS  float64    `json:"servedMs"`
	// Degraded marks an answer served below the requested α by brownout.
	Degraded bool `json:"degraded,omitempty"`
	// RequestedAlpha is the original request's α when Degraded.
	RequestedAlpha float64 `json:"requestedAlpha,omitempty"`
	// BrownoutLevel is the degradation level the answer was served at.
	BrownoutLevel int `json:"brownoutLevel,omitempty"`
	// Trace is the query's span tree — planning, leaves, fetch steps,
	// shard/peer fan-out — present only when the call asked for it with
	// ?debug=trace.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

// BatchRequest is the body of a /batch call: queries to pipeline through
// the request queue, with an optional per-request deadline in milliseconds
// (counted from arrival; Config.DefaultDeadline when omitted).
type BatchRequest struct {
	Queries    []QueryRequest `json:"queries"`
	DeadlineMS int            `json:"deadlineMs"`
}

// BatchEntry is the outcome of one query of a batch: either a result or an
// error, with TimedOut marking deadline expiry (queued or mid-flight),
// Cancelled marking context cancellation (client gone, server closing) and
// Rejected marking admission refusal (queue backpressure or the in-flight
// budget cap).
type BatchEntry struct {
	QueryResponse
	Error     string `json:"error,omitempty"`
	TimedOut  bool   `json:"timedOut,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`
	Rejected  bool   `json:"rejected,omitempty"`
}

// BatchResponse is the body of a /batch reply. Entries are in request
// order. Rejected counts entries refused at admission.
type BatchResponse struct {
	Results  []BatchEntry `json:"results"`
	Rejected int          `json:"rejected,omitempty"`
	ServedMS float64      `json:"servedMs"`
}

// job is one queued batch query awaiting a worker.
type job struct {
	req QueryRequest
	// ctx is the parent (request) context; the worker derives the
	// execution context from it with the job's deadline.
	ctx      context.Context
	deadline time.Time
	// weight is the admission weight ⌈α·|D|⌉ released on completion.
	weight int64
	entry  *BatchEntry
	wg     *sync.WaitGroup
}

// Server hosts the HTTP handlers and the batch worker pool over one shared
// System. Create with New, release with Close.
//
// Every serving counter is an instrument owned by the metrics registry:
// handlers increment the same atomics /metrics scrapes and /stats reads, so
// the two endpoints render one source of truth by construction (there is no
// shadow bookkeeping to drift).
type Server struct {
	cfg     Config
	started time.Time
	brown   *brownoutController
	reg     *obs.Registry
	log     *obs.Logger

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	queries   *obs.Counter   // successful query executions (all paths)
	failures  *obs.Counter   // rejected or failed query executions
	latency   *obs.Histogram // serving time of successful executions (seconds)
	streams   *obs.Counter   // /stream calls completed successfully
	batches   *obs.Counter   // /batch calls accepted
	expired   *obs.Counter   // batch jobs failed on deadline (queued or mid-flight)
	cancelled *obs.Counter   // batch jobs aborted by context cancellation
	rejected  *obs.Counter   // batch jobs refused at admission
	enqueued  *obs.Counter   // batch jobs admitted to the queue
	completed *obs.Counter   // batch jobs finished by workers
	inflight  *obs.Gauge     // summed admission weight of unfinished batch jobs

	internalErrors *obs.Counter // contained panics (middleware + evaluator)
	degradedServed *obs.Counter // answers served below the requested α
	shed           *obs.Counter // requests refused by brownout shedding
	draining       atomic.Bool  // shutdown started; readiness fails
}

// New builds a Server and starts its batch worker pool. It fails only on
// an invalid configuration (an unknown brownout mode).
func New(cfg Config) (*Server, error) {
	s := &Server{
		cfg:     cfg.withDefaults(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	brown, err := newBrownoutController(s.cfg.Brownout)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.brown = brown
	s.queue = make(chan *job, s.cfg.QueueDepth)
	s.log = s.cfg.Logger
	if s.log == nil {
		s.log, _ = obs.NewLogger(os.Stderr, "text")
	}
	s.reg = s.cfg.Registry
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.registerMetrics()
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				case <-s.stop:
					// Graceful drain: finish the queued jobs instead of
					// failing them — admission already stopped (handlers are
					// not invoked after Close), so the queue only shrinks.
					for {
						select {
						case j := <-s.queue:
							s.runJob(j)
						default:
							return
						}
					}
				}
			}
		}()
	}
	return s, nil
}

// registerMetrics creates the serving instruments inside the registry and
// binds the engine's own (plan cache, persistence, cluster) so one GET
// /metrics scrape covers the full stack. Derived state — brownout level,
// queue pressure, uptime — is exported as computed gauges evaluated at
// scrape time from the same controller /stats reads.
func (s *Server) registerMetrics() {
	r := s.reg
	s.queries = r.Counter("beas_queries_total", "Queries answered successfully (all serving surfaces).")
	s.failures = r.Counter("beas_query_failures_total", "Queries rejected or failed (validation, execution, shedding).")
	s.latency = r.Histogram("beas_query_duration_seconds", "End-to-end serving latency of successful queries.", obs.DurationBuckets)
	s.streams = r.Counter("beas_streams_total", "Completed /stream responses.")
	s.batches = r.Counter("beas_batch_batches_total", "Accepted /batch calls.")
	s.expired = r.Counter("beas_batch_expired_total", "Batch jobs failed on deadline, queued or mid-flight.")
	s.cancelled = r.Counter("beas_batch_cancelled_total", "Batch jobs aborted by context cancellation.")
	s.rejected = r.Counter("beas_batch_rejected_total", "Batch jobs refused at admission (queue or budget backpressure).")
	s.enqueued = r.Counter("beas_batch_enqueued_total", "Batch jobs admitted to the request queue.")
	s.completed = r.Counter("beas_batch_completed_total", "Batch jobs finished by workers.")
	s.inflight = r.Gauge("beas_batch_inflight_budget", "Summed admission weight ⌈α·|D|⌉ of unfinished batch jobs.")
	s.internalErrors = r.Counter("beas_internal_errors_total", "Contained panics (middleware and evaluator).")
	s.degradedServed = r.Counter("beas_degraded_total", "Answers served below the requested α by brownout.")
	s.shed = r.Counter("beas_shed_total", "Requests refused by brownout shedding.")
	r.GaugeFunc("beas_brownout_level", "Current brownout degradation level.", func() float64 {
		level, _ := s.brown.snapshot()
		return float64(level)
	})
	r.GaugeFunc("beas_brownout_level_shifts", "Brownout level transitions since start.", func() float64 {
		_, shifts := s.brown.snapshot()
		return float64(shifts)
	})
	r.GaugeFunc("beas_brownout_pressure", "Instantaneous overload pressure feeding the controller.", func() float64 { return s.pressure() })
	r.GaugeFunc("beas_batch_queue_depth", "Batch jobs waiting in the request queue.", func() float64 { return float64(len(s.queue)) })
	r.GaugeFunc("beas_batch_queue_cap", "Batch request queue capacity.", func() float64 { return float64(cap(s.queue)) })
	r.GaugeFunc("beas_draining", "Whether shutdown drain started and readiness fails (0/1).", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	r.GaugeFunc("beas_uptime_seconds", "Seconds since the server started.", func() float64 { return time.Since(s.started).Seconds() })
	if s.cfg.Audit != nil {
		r.GaugeFunc("beas_audit_written", "Audit records delivered to the sink.", func() float64 { return float64(s.cfg.Audit.Written()) })
		r.GaugeFunc("beas_audit_dropped", "Audit records dropped by ring backpressure.", func() float64 { return float64(s.cfg.Audit.Dropped()) })
	}
	if s.cfg.System != nil {
		s.cfg.System.RegisterMetrics(s.reg)
	}
	if s.cfg.Cluster != nil {
		s.cfg.Cluster.RegisterMetrics(s.reg)
	}
}

// Close stops the batch workers gracefully: in-flight jobs finish and the
// queued backlog is drained and executed (each job still subject to its own
// deadline), so a shutdown does not fail work the server already accepted.
// Handlers must not be invoked after Close. Any job that somehow remains
// after the workers exit is failed as cancelled.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			j.entry.Error = "server shutting down"
			j.entry.Cancelled = true
			s.cancelled.Inc()
			s.failures.Inc()
			s.inflight.Add(-j.weight)
			j.wg.Done()
		default:
			return
		}
	}
}

// Handler returns the route mux: /query, /stream, /batch, /snapshot,
// /healthz (liveness), /readyz (readiness), /stats, /metrics (Prometheus
// text exposition) — every route wrapped in the panic-recovery middleware,
// so a handler crash answers 500 and leaves the process serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.reg.Handler())
	if s.cfg.Cluster != nil {
		mux.Handle(cluster.FetchPath, s.cfg.Cluster.Handler())
	}
	return s.recoverMiddleware(mux)
}

// recoverMiddleware contains a panic escaping any handler: log it with the
// stack, count it, answer 500, keep the process alive. http.ErrAbortHandler
// is re-raised — it is net/http's own sentinel for "abandon this response",
// not a crash.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.internalErrors.Inc()
			s.failures.Inc()
			s.log.Error("contained panic in handler",
				"method", r.Method, "path", r.URL.Path, "panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			// Best-effort 500: if the handler already started the response
			// (a mid-stream panic), the write is a no-op on the status line
			// and the client sees a truncated body.
			httpError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// StartDrain marks the server as draining: /readyz starts failing so load
// balancers stop routing here, while in-flight and queued work still
// completes. Call at the beginning of a graceful shutdown, before closing
// listeners.
func (s *Server) StartDrain() { s.draining.Store(true) }

// maxRequestBytes caps a request body; a SQL statement (or a few hundred)
// has no business being bigger, and the bound keeps a hostile POST from
// ballooning memory.
const maxRequestBytes = 1 << 20

// effectiveAlpha resolves a request's resource ratio against the server
// default, without validating it.
func (s *Server) effectiveAlpha(req QueryRequest) float64 {
	if req.Alpha == 0 {
		return s.cfg.DefaultAlpha
	}
	return req.Alpha
}

// queryOptions assembles the per-call options for one request: the
// server-wide ExecOptions first, then the request's (possibly degraded)
// alpha, its floor and its tag. The request's alpha always governs the
// resource bound — a WithBudget pinned in Config.ExecOptions is reset
// (WithBudget(0) = unset), because an absolute budget would silently
// override every client's alpha and desynchronise the weighted batch
// admission, which weighs jobs by ⌈α·|D|⌉. Config.ExecOptions is for
// execution-strategy knobs (fetch workers, partition-aware toggle, cache
// bypass), not resource bounds. The floor travels into the engine as
// WithMinAlpha: even if a future degradation path miscomputes, the core
// clamps the effective ratio back to the caller's SLO.
func (s *Server) queryOptions(req QueryRequest, alpha, floor float64) []beas.Option {
	opts := make([]beas.Option, 0, len(s.cfg.ExecOptions)+4)
	opts = append(opts, s.cfg.ExecOptions...)
	opts = append(opts, beas.WithBudget(0), beas.WithAlpha(alpha), beas.WithMinAlpha(floor))
	if req.Tag != "" {
		opts = append(opts, beas.WithTag(req.Tag))
	}
	return opts
}

// validate rejects requests that cannot run before any work happens.
func (s *Server) validate(req QueryRequest) (float64, int, error) {
	if req.SQL == "" {
		return 0, http.StatusBadRequest, fmt.Errorf("missing \"sql\"")
	}
	alpha := s.effectiveAlpha(req)
	if alpha <= 0 || alpha > 1 {
		return 0, http.StatusBadRequest, fmt.Errorf("alpha %g outside (0, 1]", alpha)
	}
	if req.MinAlpha < 0 || req.MinAlpha > 1 {
		return 0, http.StatusBadRequest, fmt.Errorf("minAlpha %g outside [0, 1]", req.MinAlpha)
	}
	return alpha, http.StatusOK, nil
}

// resolveDegradation applies the brownout controller to one validated
// request: the level to serve at, the effective α (shrunk toward the floor
// when browned out, never below it, never above the request) and the floor
// that travels into the engine.
func (s *Server) resolveDegradation(alpha float64, req QueryRequest) (level int, eff, floor float64) {
	level = s.currentLevel()
	floor = s.floorFor(req)
	if floor > alpha {
		floor = alpha
	}
	eff = degradeAlpha(alpha, floor, level)
	return level, eff, floor
}

// execute answers one request against the shared System under ctx,
// returning an HTTP status for the error cases. Under brownout the request
// runs at a degraded effective α (never below its floor); the response
// marks the degradation and reports the achieved α, still η-certified. A
// contained evaluator panic maps to 500 and the internalErrors counter —
// the process, and every other request, keeps going.
//
// event names the serving surface for the audit trail ("query" or
// "batch"; /stream audits itself); every exit emits exactly one audit
// record whose budget_spent and eta are copied from the same Answer the
// client is about to receive. wantTrace attaches the span tree to the
// response; a configured SlowQuery threshold traces regardless, so the
// outliers it flags come with their full execution timeline.
func (s *Server) execute(ctx context.Context, req QueryRequest, event string, wantTrace bool) (*QueryResponse, int, error) {
	rec := obs.AuditRecord{
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		Event:          event,
		Tag:            req.Tag,
		SQLDigest:      obs.SQLDigest(req.SQL),
		AlphaRequested: s.effectiveAlpha(req),
	}
	alpha, code, err := s.validate(req)
	if err != nil {
		s.failures.Inc()
		rec.Status, rec.Err = code, err.Error()
		s.cfg.Audit.Record(rec)
		return nil, code, err
	}
	level, eff, floor := s.resolveDegradation(alpha, req)
	rec.AlphaEffective = eff
	rec.BrownoutLevel = level

	opts := s.queryOptions(req, eff, floor)
	var tr *beas.Trace
	if wantTrace || s.cfg.SlowQuery > 0 {
		tr = beas.NewTrace()
		opts = append(opts, beas.WithTrace(tr))
	}
	var remoteBefore int64
	if s.cfg.Cluster != nil {
		remoteBefore = s.cfg.Cluster.RemoteXs()
	}

	start := time.Now()
	ans, plan, err := s.cfg.System.QuerySQL(ctx, req.SQL, opts...)
	served := time.Since(start)
	rec.LatencyMicros = served.Microseconds()
	if s.cfg.Cluster != nil {
		// Attribution is approximate under concurrency: the counter delta
		// can include fetches of overlapping queries.
		rec.RemoteFetches = s.cfg.Cluster.RemoteXs() - remoteBefore
	}
	if err != nil {
		s.failures.Inc()
		code := http.StatusUnprocessableEntity
		if pe, ok := beas.IsInternalError(err); ok {
			s.internalErrors.Inc()
			s.log.Error("contained evaluator panic", "event", event, "sql_digest", rec.SQLDigest, "err", pe, "stack", string(pe.Stack))
			code = http.StatusInternalServerError
		} else {
			var pe *cluster.PeerError
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				code = http.StatusGatewayTimeout
			case errors.As(err, &pe):
				// Typed degraded path: a cluster peer was unreachable past the
				// retry budget — the answer is refused, never silently partial.
				code = http.StatusBadGateway
			}
		}
		rec.Status, rec.Err = code, err.Error()
		s.cfg.Audit.Record(rec)
		return nil, code, err
	}
	s.queries.Inc()
	s.latency.Observe(served.Seconds())
	s.brown.observe(served)

	resp := &QueryResponse{
		Rows:      ans.Rel.Len(),
		Eta:       ans.Eta,
		Exact:     ans.Exact,
		Alpha:     eff,
		Accessed:  ans.Stats.Accessed,
		Budget:    plan.Budget,
		CacheHit:  plan.CacheHit,
		PlanGenMS: float64(plan.GenTime.Microseconds()) / 1e3,
		ServedMS:  float64(served.Microseconds()) / 1e3,
	}
	if eff < alpha {
		resp.Degraded = true
		resp.RequestedAlpha = alpha
		resp.BrownoutLevel = level
		s.degradedServed.Inc()
	}
	for _, a := range ans.Rel.Schema.Attrs {
		resp.Columns = append(resp.Columns, a.Name)
	}
	for i, t := range ans.Rel.Tuples {
		if i >= s.cfg.MaxRows {
			resp.Truncated = true
			break
		}
		resp.Tuples = append(resp.Tuples, stringRow(t))
	}
	if wantTrace && tr != nil {
		j := tr.JSON()
		resp.Trace = &j
	}
	if s.cfg.SlowQuery > 0 && served >= s.cfg.SlowQuery && tr != nil {
		s.log.Warn("slow query", "event", event, "sql_digest", rec.SQLDigest,
			"served_ms", float64(served.Microseconds())/1e3, "trace", "\n"+tr.String())
	}
	rec.BudgetGranted = plan.Budget
	rec.BudgetSpent = ans.Stats.Accessed
	rec.Eta = ans.Eta
	rec.Exact = ans.Exact
	rec.Truncated = ans.Stats.Truncated
	rec.Degraded = resp.Degraded
	rec.CacheHit = plan.CacheHit
	rec.PlanClass = plan.Class.String()
	rec.Status = http.StatusOK
	s.cfg.Audit.Record(rec)
	return resp, http.StatusOK, nil
}

// stringRow renders one tuple for the JSON wire format.
func stringRow(t beas.Tuple) []string {
	row := make([]string, len(t))
	for j, v := range t {
		row[j] = v.String()
	}
	return row
}

// shedIfBrownedOut refuses the request with 503 (and a Retry-After hint)
// when the current brownout level sheds this endpoint: /batch goes first at
// BrownoutShedBatch, /query and /stream only at BrownoutShedAll.
func (s *Server) shedIfBrownedOut(w http.ResponseWriter, shedAt int) bool {
	level := s.currentLevel()
	if level < shedAt {
		return false
	}
	s.shed.Inc()
	s.failures.Inc()
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("overloaded (brownout level %d): shedding load, retry later", level))
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedIfBrownedOut(w, BrownoutShedAll) {
		return
	}
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Inc()
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	wantTrace := r.URL.Query().Get("debug") == "trace"
	resp, code, err := s.execute(r.Context(), req, "query", wantTrace)
	if err != nil {
		httpError(w, code, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// streamFlushRows is how many NDJSON row lines are written between two
// explicit flushes on /stream.
const streamFlushRows = 64

// StreamSummary is the final NDJSON line of a /stream response. As on
// /query, Alpha is the achieved ratio; Degraded marks brownout service.
type StreamSummary struct {
	Rows      int     `json:"rows"`
	Eta       float64 `json:"eta"`
	Exact     bool    `json:"exact"`
	Alpha     float64 `json:"alpha"`
	Accessed  int     `json:"accessed"`
	Budget    int     `json:"budget"`
	CacheHit  bool    `json:"cacheHit"`
	PlanGenMS float64 `json:"planGenMs"`
	ServedMS  float64 `json:"servedMs"`
	// Degraded marks an answer served below the requested α by brownout.
	Degraded bool `json:"degraded,omitempty"`
	// RequestedAlpha is the original request's α when Degraded.
	RequestedAlpha float64 `json:"requestedAlpha,omitempty"`
	// BrownoutLevel is the degradation level the answer was served at.
	BrownoutLevel int `json:"brownoutLevel,omitempty"`
}

// streamLine is one NDJSON line of a /stream response: exactly one field is
// set per line — columns first, then rows, then either a summary or an
// error.
type streamLine struct {
	Columns []string       `json:"columns,omitempty"`
	Row     []string       `json:"row,omitempty"`
	Summary *StreamSummary `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// handleStream answers one query as NDJSON over the streaming executor.
// Planning errors surface as a normal HTTP error before any line is
// written; errors after the stream started (cancellation, deadline) become
// a final {"error": ...} line, since the 200 header is already out.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedIfBrownedOut(w, BrownoutShedAll) {
		return
	}
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Inc()
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	rec := obs.AuditRecord{
		Time:           time.Now().UTC().Format(time.RFC3339Nano),
		Event:          "stream",
		Tag:            req.Tag,
		SQLDigest:      obs.SQLDigest(req.SQL),
		AlphaRequested: s.effectiveAlpha(req),
	}
	auditFail := func(code int, err error) {
		rec.Status, rec.Err = code, err.Error()
		s.cfg.Audit.Record(rec)
	}
	alpha, code, err := s.validate(req)
	if err != nil {
		s.failures.Inc()
		auditFail(code, err)
		httpError(w, code, err.Error())
		return
	}
	level, eff, floor := s.resolveDegradation(alpha, req)
	rec.AlphaEffective = eff
	rec.BrownoutLevel = level
	q, err := beas.ParseSQL(req.SQL)
	if err != nil {
		s.failures.Inc()
		auditFail(http.StatusUnprocessableEntity, err)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	opts := s.queryOptions(req, eff, floor)
	var tr *beas.Trace
	if s.cfg.SlowQuery > 0 {
		tr = beas.NewTrace()
		opts = append(opts, beas.WithTrace(tr))
	}
	start := time.Now()
	st, err := s.cfg.System.QueryStream(r.Context(), q, opts...)
	if err != nil {
		s.failures.Inc()
		rec.LatencyMicros = time.Since(start).Microseconds()
		auditFail(http.StatusUnprocessableEntity, err)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	var cols []string
	for _, a := range st.Schema().Attrs {
		cols = append(cols, a.Name)
	}
	_ = enc.Encode(streamLine{Columns: cols})
	flush()

	rows := 0
	for {
		t, ok := st.Next()
		if !ok {
			break
		}
		if err := enc.Encode(streamLine{Row: stringRow(t)}); err != nil {
			// Client is gone; Close (deferred) cancels the execution.
			s.failures.Inc()
			rec.LatencyMicros = time.Since(start).Microseconds()
			auditFail(http.StatusOK, fmt.Errorf("client disconnected mid-stream: %w", err))
			return
		}
		if rows++; rows%streamFlushRows == 0 {
			flush()
		}
	}
	if err := st.Err(); err != nil {
		s.failures.Inc()
		if pe, ok := beas.IsInternalError(err); ok {
			s.internalErrors.Inc()
			s.log.Error("contained evaluator panic", "event", "stream", "sql_digest", rec.SQLDigest, "err", pe, "stack", string(pe.Stack))
		}
		rec.LatencyMicros = time.Since(start).Microseconds()
		auditFail(http.StatusOK, err)
		_ = enc.Encode(streamLine{Error: err.Error()})
		flush()
		return
	}
	served := time.Since(start)
	ans, plan := st.Answer(), st.Plan()
	sum := &StreamSummary{
		Rows:      rows,
		Eta:       ans.Eta,
		Exact:     ans.Exact,
		Alpha:     eff,
		Accessed:  ans.Stats.Accessed,
		Budget:    plan.Budget,
		CacheHit:  plan.CacheHit,
		PlanGenMS: float64(plan.GenTime.Microseconds()) / 1e3,
		ServedMS:  float64(served.Microseconds()) / 1e3,
	}
	if eff < alpha {
		sum.Degraded = true
		sum.RequestedAlpha = alpha
		sum.BrownoutLevel = level
		s.degradedServed.Inc()
	}
	_ = enc.Encode(streamLine{Summary: sum})
	flush()
	s.queries.Inc()
	s.streams.Inc()
	s.latency.Observe(served.Seconds())
	s.brown.observe(served)
	if s.cfg.SlowQuery > 0 && served >= s.cfg.SlowQuery && tr != nil {
		s.log.Warn("slow query", "event", "stream", "sql_digest", rec.SQLDigest,
			"served_ms", float64(served.Microseconds())/1e3, "trace", "\n"+tr.String())
	}
	rec.BudgetGranted = plan.Budget
	rec.BudgetSpent = ans.Stats.Accessed
	rec.Eta = ans.Eta
	rec.Exact = ans.Exact
	rec.Truncated = ans.Stats.Truncated
	rec.Degraded = sum.Degraded
	rec.CacheHit = plan.CacheHit
	rec.PlanClass = plan.Class.String()
	rec.LatencyMicros = served.Microseconds()
	rec.Status = http.StatusOK
	s.cfg.Audit.Record(rec)
}

// jobWeight is the admission weight of one batch entry: its estimated
// access budget ⌈α·|D|⌉ (at least 1, and 1 when the dataset size is not
// configured — weighted admission then degrades to per-entry counting).
func (s *Server) jobWeight(alpha float64) int64 {
	if s.cfg.DBSize <= 0 || alpha <= 0 || alpha > 1 {
		return 1
	}
	w := int64(math.Ceil(alpha * float64(s.cfg.DBSize)))
	if w < 1 {
		w = 1
	}
	return w
}

// admit reserves w units of the in-flight budget, refusing when the cap
// would be exceeded — unless nothing else is in flight, so one over-cap job
// is still servable rather than permanently rejected.
func (s *Server) admit(w int64) bool {
	nw := s.inflight.Add(w)
	if nw > int64(s.cfg.BudgetCap) && nw != w {
		s.inflight.Add(-w)
		return false
	}
	return true
}

// runJob executes one queued batch query under its remaining deadline, or
// fails it when the deadline passed while it waited. Mid-flight expiry is
// abandoned at the executor's next cancellation point — an expired job no
// longer burns a worker to completion.
func (s *Server) runJob(j *job) {
	defer s.completed.Inc()
	defer s.inflight.Add(-j.weight)
	defer j.wg.Done()
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.entry.TimedOut = true
		j.entry.Error = "deadline exceeded before execution"
		s.expired.Inc()
		s.failures.Inc()
		return
	}
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	resp, _, err := s.execute(ctx, j.req, "batch", false)
	switch {
	case err == nil:
		j.entry.QueryResponse = *resp
	case errors.Is(err, context.DeadlineExceeded):
		j.entry.TimedOut = true
		j.entry.Error = "deadline exceeded mid-execution"
		s.expired.Inc()
	case errors.Is(err, context.Canceled):
		j.entry.Cancelled = true
		j.entry.Error = "cancelled: " + err.Error()
		s.cancelled.Inc()
	default:
		j.entry.Error = err.Error()
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.shedIfBrownedOut(w, BrownoutShedBatch) {
		return
	}
	var req BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "empty \"queries\"")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	deadline := time.Now().Add(s.cfg.DefaultDeadline)
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	s.batches.Inc()

	start := time.Now()
	resp := &BatchResponse{Results: make([]BatchEntry, len(req.Queries))}
	// Weigh admission by the α the job will actually run at: under brownout
	// the degraded jobs are cheaper, so the same budget cap admits more of
	// them — that is precisely where the goodput of a browned-out server
	// comes from.
	level := s.currentLevel()
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		entry := &resp.Results[i]
		alpha := s.effectiveAlpha(q)
		floor := s.floorFor(q)
		weight := s.jobWeight(degradeAlpha(alpha, math.Min(floor, alpha), level))
		if !s.admit(weight) {
			// Weighted backpressure: the in-flight budget cap is reached;
			// fail fast instead of queueing work the pool cannot absorb.
			s.brown.noteAdmission(true)
			entry.Rejected = true
			entry.Error = "in-flight budget cap reached"
			resp.Rejected++
			s.rejected.Inc()
			s.failures.Inc()
			continue
		}
		wg.Add(1)
		j := &job{req: q, ctx: r.Context(), deadline: deadline, weight: weight, entry: entry, wg: &wg}
		select {
		case s.queue <- j:
			s.brown.noteAdmission(false)
			s.enqueued.Inc()
		default:
			// Queue backpressure: the channel is full; fail fast instead of
			// buffering without bound.
			s.brown.noteAdmission(true)
			s.inflight.Add(-weight)
			entry.Rejected = true
			entry.Error = "request queue full"
			resp.Rejected++
			s.rejected.Inc()
			s.failures.Inc()
			wg.Done()
		}
	}
	wg.Wait()
	resp.ServedMS = float64(time.Since(start).Microseconds()) / 1e3
	s.writeJSON(w, http.StatusOK, resp)
}

// SnapshotRequest is the optional body of a /snapshot call. An empty body
// (or empty dir) checkpoints a persisted system into its own directory,
// truncating the WAL; a dir writes a standalone snapshot copy there.
type SnapshotRequest struct {
	Dir string `json:"dir,omitempty"`
}

// handleSnapshot triggers a snapshot: the operator's knob for forcing a
// checkpoint before a deploy or taking a consistent copy for another host.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SnapshotRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	start := time.Now()
	if req.Dir == "" {
		if !s.cfg.System.Persisted() {
			httpError(w, http.StatusConflict,
				"system is not persisted (start with -data, or pass {\"dir\": ...})")
			return
		}
		if err := s.cfg.System.Checkpoint(r.Context()); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else {
		if err := s.cfg.System.Snapshot(r.Context(), req.Dir); err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"dir":     req.Dir,
		"tookMs":  float64(time.Since(start).Microseconds()) / 1e3,
		"persist": persistStats(s.cfg.System),
	})
}

// handleHealthz is LIVENESS: it answers ok as long as the process serves
// HTTP at all, regardless of overload or durability trouble — restarts are
// for dead processes, and a browned-out server is alive by design. Routing
// decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"dataset":   s.cfg.Dataset,
		"size":      s.cfg.DBSize,
		"relations": s.cfg.Relations,
		"shards":    s.cfg.Shards,
		"uptimeSec": time.Since(s.started).Seconds(),
	})
}

// handleReadyz is READINESS: 503 while the server should not receive new
// traffic — draining for shutdown, shedding everything at max brownout, or
// serving memory-only because the persistence circuit is open or the WAL
// degraded. The body lists every failing condition so an operator sees why
// the instance left the pool.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.draining.Load() {
		reasons = append(reasons, "draining: shutdown in progress")
	}
	level, _ := s.brown.snapshot()
	if level >= BrownoutShedAll {
		reasons = append(reasons, fmt.Sprintf("brownout level %d: shedding all queries", level))
	}
	if s.cfg.System.Persisted() {
		ps := s.cfg.System.PersistStats()
		if ps.CircuitOpen {
			reasons = append(reasons, "persistence circuit open: serving memory-only")
		}
		if ps.WALDegraded {
			reasons = append(reasons, "WAL degraded: mutations refused")
		}
	}
	if s.cfg.Cluster != nil {
		reasons = append(reasons, s.cfg.Cluster.Ready()...)
	}
	if len(reasons) > 0 {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":  "not ready",
			"reasons": reasons,
		})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// persistStats renders a system's durability counters for the JSON
// endpoints; nil when the system is not persisted.
func persistStats(sys *beas.System) map[string]any {
	if !sys.Persisted() {
		return nil
	}
	ps := sys.PersistStats()
	out := map[string]any{
		"dir":             ps.Dir,
		"warmStart":       ps.WarmStart,
		"seq":             ps.Seq,
		"walRecords":      ps.WALRecords,
		"walBytes":        ps.WALBytes,
		"replayed":        ps.Replayed,
		"skippedReplay":   ps.SkippedReplay,
		"snapshots":       ps.Snapshots,
		"checkpoints":     ps.Checkpoints,
		"checkpointState": ps.CheckpointState,
	}
	if !ps.LastCheckpoint.IsZero() {
		out["lastCheckpointUnix"] = ps.LastCheckpoint.Unix()
	}
	if ps.CheckpointErr != "" {
		out["checkpointErr"] = ps.CheckpointErr
		out["checkpointFailures"] = ps.CheckpointFailures
	}
	if ps.CircuitOpen {
		out["circuitOpen"] = true
	}
	if ps.WALDegraded {
		out["walDegraded"] = true
		out["walError"] = ps.WALError
	}
	return out
}

// ladderStats renders the per-ladder resident footprint, so operators can
// size snapshot thresholds against what a snapshot would actually carry.
func ladderStats(sys *beas.System) []map[string]any {
	var out []map[string]any
	for _, l := range sys.LadderStats() {
		out = append(out, map[string]any{
			"relation":         l.Relation,
			"x":                l.X,
			"y":                l.Y,
			"shards":           l.Shards,
			"groups":           l.Groups,
			"levels":           l.Levels,
			"residentTuples":   l.ResidentTuples,
			"maxGroupDistinct": l.MaxGroupDistinct,
		})
	}
	return out
}

// handleStats renders the JSON operator dashboard. It reads the same
// registry instruments /metrics exposes — the endpoints are two renderings
// of one set of atomics, which TestStatsMetricsAgree pins down.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ok := s.queries.Value()
	var avgMS float64
	if n := s.latency.Count(); n > 0 {
		avgMS = s.latency.Sum() / float64(n) * 1e3
	}
	cache := s.cfg.System.PlanCacheStats()
	tags := map[string]any{}
	for tag, st := range s.cfg.System.QueryStats() {
		tags[tag] = map[string]any{
			"queries":  st.Queries,
			"errors":   st.Errors,
			"accessed": st.Accessed,
			"totalMs":  float64(st.Total.Microseconds()) / 1e3,
		}
	}
	level, shifts := s.brown.snapshot()
	var clusterSection map[string]any
	if s.cfg.Cluster != nil {
		clusterSection = s.cfg.Cluster.Stats()
	}
	var auditSection map[string]any
	if s.cfg.Audit != nil {
		auditSection = map[string]any{
			"written": s.cfg.Audit.Written(),
			"dropped": s.cfg.Audit.Dropped(),
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"cluster":        clusterSection,
		"queries":        ok,
		"failures":       s.failures.Value(),
		"streams":        s.streams.Value(),
		"avgLatencyMs":   avgMS,
		"uptimeSec":      time.Since(s.started).Seconds(),
		"internalErrors": s.internalErrors.Value(),
		"persist":        persistStats(s.cfg.System),
		"ladders":        ladderStats(s.cfg.System),
		"audit":          auditSection,
		"brownout": map[string]any{
			"mode":           s.brown.cfg.Mode,
			"level":          level,
			"levelShifts":    shifts,
			"pressure":       s.pressure(),
			"smoothed":       s.brown.smoothed(),
			"minAlphaFloor":  s.brown.cfg.MinAlpha,
			"degradedServed": s.degradedServed.Value(),
			"shed":           s.shed.Value(),
			"draining":       s.draining.Load(),
		},
		"batch": map[string]any{
			"batches":        s.batches.Value(),
			"enqueued":       s.enqueued.Value(),
			"completed":      s.completed.Value(),
			"rejected":       s.rejected.Value(),
			"expired":        s.expired.Value(),
			"cancelled":      s.cancelled.Value(),
			"queueDepth":     len(s.queue),
			"queueCap":       cap(s.queue),
			"workers":        s.cfg.Workers,
			"budgetCap":      s.cfg.BudgetCap,
			"inFlightBudget": s.inflight.Value(),
		},
		"tags": tags,
		"planCache": map[string]any{
			"hits":      cache.Hits,
			"misses":    cache.Misses,
			"evictions": cache.Evictions,
			"len":       cache.Len,
			"cap":       cache.Cap,
			"hitRate":   cache.HitRate(),
		},
	})
}

// httpError answers a JSON error body. It stays a plain function (no
// logging): error responses are part of normal service, not events.
func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("response encode failed", "err", err)
	}
}
