// Package serve implements the HTTP serving layer of the BEAS daemon: the
// online half of the paper's Fig. 2 architecture as reusable handlers, so
// cmd/beasd (the production daemon) and internal/bench (the end-to-end HTTP
// latency harness) drive the exact same code.
//
// Two request paths share one concurrency-safe System:
//
//   - POST /query answers a single query synchronously on the caller's
//     connection goroutine — the lowest-latency path.
//   - POST /batch pipelines many queries through a bounded request queue
//     drained by a fixed worker pool. The queue gives backpressure (jobs
//     that do not fit are rejected immediately, never buffered without
//     bound) and every request carries a deadline: jobs whose deadline
//     passes while queued are failed without executing, so a stalled
//     client cannot wedge the pool.
//
// GET /healthz reports liveness plus dataset shape; GET /stats reports
// serving counters, queue pressure and plan-cache effectiveness.
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	beas "repro"
)

// Config assembles a Server. System is required; zero values elsewhere get
// the documented defaults.
type Config struct {
	// System is the shared query engine (immutable database + indices).
	System *beas.System
	// DefaultAlpha is used when a request omits alpha (default 0.01).
	DefaultAlpha float64
	// MaxRows caps answer rows returned per query (default 1000).
	MaxRows int
	// Dataset, DBSize, Relations and Shards describe the loaded data for
	// /healthz; informational only.
	Dataset   string
	DBSize    int
	Relations int
	Shards    int

	// QueueDepth bounds the /batch request queue; enqueue attempts beyond
	// it are rejected with a per-request error (default 256).
	QueueDepth int
	// Workers is the batch worker-pool size (default GOMAXPROCS).
	Workers int
	// MaxBatch caps queries per /batch call (default 256).
	MaxBatch int
	// DefaultDeadline applies to batch requests that set no deadlineMs
	// (default 30s).
	DefaultDeadline time.Duration
}

func (c Config) withDefaults() Config {
	if c.DefaultAlpha <= 0 {
		c.DefaultAlpha = 0.01
	}
	if c.MaxRows <= 0 {
		c.MaxRows = 1000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	return c
}

// QueryRequest is the body of one /query call and one element of a /batch
// call's queries array.
type QueryRequest struct {
	SQL   string  `json:"sql"`
	Alpha float64 `json:"alpha"`
}

// QueryResponse is the answer payload of one query.
type QueryResponse struct {
	Columns   []string   `json:"columns"`
	Tuples    [][]string `json:"tuples"`
	Rows      int        `json:"rows"`
	Truncated bool       `json:"rowsTruncated,omitempty"` // response capped at MaxRows
	Eta       float64    `json:"eta"`
	Exact     bool       `json:"exact"`
	Alpha     float64    `json:"alpha"`
	Accessed  int        `json:"accessed"`
	Budget    int        `json:"budget"`
	CacheHit  bool       `json:"cacheHit"`
	PlanGenMS float64    `json:"planGenMs"`
	ServedMS  float64    `json:"servedMs"`
}

// BatchRequest is the body of a /batch call: queries to pipeline through
// the request queue, with an optional per-request deadline in milliseconds
// (counted from arrival; Config.DefaultDeadline when omitted).
type BatchRequest struct {
	Queries    []QueryRequest `json:"queries"`
	DeadlineMS int            `json:"deadlineMs"`
}

// BatchEntry is the outcome of one query of a batch: either a result or an
// error, with TimedOut marking deadline expiry and Rejected marking queue
// backpressure.
type BatchEntry struct {
	QueryResponse
	Error    string `json:"error,omitempty"`
	TimedOut bool   `json:"timedOut,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
}

// BatchResponse is the body of a /batch reply. Entries are in request
// order. Rejected counts entries refused by queue backpressure.
type BatchResponse struct {
	Results  []BatchEntry `json:"results"`
	Rejected int          `json:"rejected,omitempty"`
	ServedMS float64      `json:"servedMs"`
}

// job is one queued batch query awaiting a worker.
type job struct {
	req      QueryRequest
	deadline time.Time
	entry    *BatchEntry
	wg       *sync.WaitGroup
}

// Server hosts the HTTP handlers and the batch worker pool over one shared
// System. Create with New, release with Close.
type Server struct {
	cfg     Config
	started time.Time

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	queries   atomic.Int64 // successful query executions (both paths)
	failures  atomic.Int64 // rejected or failed query executions
	totalNS   atomic.Int64 // cumulative serving time of successful executions
	batches   atomic.Int64 // /batch calls accepted
	timeouts  atomic.Int64 // batch jobs expired before execution
	rejected  atomic.Int64 // batch jobs refused by backpressure
	enqueued  atomic.Int64 // batch jobs admitted to the queue
	completed atomic.Int64 // batch jobs finished by workers
}

// New builds a Server and starts its batch worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	s.queue = make(chan *job, s.cfg.QueueDepth)
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				case <-s.stop:
					return
				}
			}
		}()
	}
	return s
}

// Close stops the batch workers. In-flight jobs finish; queued jobs are
// drained and failed. Handlers must not be invoked after Close.
func (s *Server) Close() {
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			j.entry.Error = "server shutting down"
			s.failures.Add(1)
			j.wg.Done()
		default:
			return
		}
	}
}

// Handler returns the route mux: /query, /batch, /healthz, /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// maxRequestBytes caps a request body; a SQL statement (or a few hundred)
// has no business being bigger, and the bound keeps a hostile POST from
// ballooning memory.
const maxRequestBytes = 1 << 20

// execute answers one request against the shared System, returning an HTTP
// status for the error cases.
func (s *Server) execute(req QueryRequest) (*QueryResponse, int, error) {
	if req.SQL == "" {
		s.failures.Add(1)
		return nil, http.StatusBadRequest, fmt.Errorf("missing \"sql\"")
	}
	alpha := req.Alpha
	if alpha == 0 {
		alpha = s.cfg.DefaultAlpha
	}
	if alpha <= 0 || alpha > 1 {
		s.failures.Add(1)
		return nil, http.StatusBadRequest, fmt.Errorf("alpha %g outside (0, 1]", alpha)
	}

	start := time.Now()
	ans, plan, err := s.cfg.System.QuerySQL(req.SQL, alpha)
	if err != nil {
		s.failures.Add(1)
		return nil, http.StatusUnprocessableEntity, err
	}
	served := time.Since(start)
	s.queries.Add(1)
	s.totalNS.Add(served.Nanoseconds())

	resp := &QueryResponse{
		Rows:      ans.Rel.Len(),
		Eta:       ans.Eta,
		Exact:     ans.Exact,
		Alpha:     alpha,
		Accessed:  ans.Stats.Accessed,
		Budget:    plan.Budget,
		CacheHit:  plan.CacheHit,
		PlanGenMS: float64(plan.GenTime.Microseconds()) / 1e3,
		ServedMS:  float64(served.Microseconds()) / 1e3,
	}
	for _, a := range ans.Rel.Schema.Attrs {
		resp.Columns = append(resp.Columns, a.Name)
	}
	for i, t := range ans.Rel.Tuples {
		if i >= s.cfg.MaxRows {
			resp.Truncated = true
			break
		}
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		resp.Tuples = append(resp.Tuples, row)
	}
	return resp, http.StatusOK, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.failures.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	resp, code, err := s.execute(req)
	if err != nil {
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runJob executes one queued batch query, or fails it when its deadline
// passed while it waited.
func (s *Server) runJob(j *job) {
	defer s.completed.Add(1)
	defer j.wg.Done()
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.entry.TimedOut = true
		j.entry.Error = "deadline exceeded before execution"
		s.timeouts.Add(1)
		s.failures.Add(1)
		return
	}
	resp, _, err := s.execute(j.req)
	if err != nil {
		j.entry.Error = err.Error()
		return
	}
	j.entry.QueryResponse = *resp
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "empty \"queries\"")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	deadline := time.Now().Add(s.cfg.DefaultDeadline)
	if req.DeadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	}
	s.batches.Add(1)

	start := time.Now()
	resp := &BatchResponse{Results: make([]BatchEntry, len(req.Queries))}
	var wg sync.WaitGroup
	for i, q := range req.Queries {
		entry := &resp.Results[i]
		wg.Add(1)
		j := &job{req: q, deadline: deadline, entry: entry, wg: &wg}
		select {
		case s.queue <- j:
			s.enqueued.Add(1)
		default:
			// Backpressure: the queue is full; fail fast instead of
			// buffering without bound.
			entry.Rejected = true
			entry.Error = "request queue full"
			resp.Rejected++
			s.rejected.Add(1)
			s.failures.Add(1)
			wg.Done()
		}
	}
	wg.Wait()
	resp.ServedMS = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"dataset":   s.cfg.Dataset,
		"size":      s.cfg.DBSize,
		"relations": s.cfg.Relations,
		"shards":    s.cfg.Shards,
		"uptimeSec": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ok := s.queries.Load()
	var avgMS float64
	if ok > 0 {
		avgMS = float64(s.totalNS.Load()) / float64(ok) / 1e6
	}
	cache := s.cfg.System.PlanCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"queries":      ok,
		"failures":     s.failures.Load(),
		"avgLatencyMs": avgMS,
		"batch": map[string]any{
			"batches":    s.batches.Load(),
			"enqueued":   s.enqueued.Load(),
			"completed":  s.completed.Load(),
			"rejected":   s.rejected.Load(),
			"timeouts":   s.timeouts.Load(),
			"queueDepth": len(s.queue),
			"queueCap":   cap(s.queue),
			"workers":    s.cfg.Workers,
		},
		"planCache": map[string]any{
			"hits":      cache.Hits,
			"misses":    cache.Misses,
			"evictions": cache.Evictions,
			"len":       cache.Len,
			"cap":       cache.Cap,
			"hitRate":   cache.HitRate(),
		},
	})
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("serve: encode response: %v", err)
	}
}
