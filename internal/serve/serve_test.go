package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fixture"
	"repro/internal/obs"

	beas "repro"
)

func testServer(t *testing.T) *Server {
	t.Helper()
	db := fixture.Example1(11, 120, 80)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		System:       beas.Open(db, as),
		DefaultAlpha: 0.1,
		MaxRows:      50,
		Dataset:      "example1",
		DBSize:       db.Size(),
		Relations:    len(db.Names()),
		// Generous cap: these tests exercise serving concurrency, not
		// weighted admission (which has its own servers below).
		BudgetCap: 1000 * db.Size(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postQuery(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, QueryResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.handleQuery(rec, req)
	var resp QueryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, rec.Body)
		}
	}
	return rec, resp
}

func postBatch(t *testing.T, s *Server, body string) (*httptest.ResponseRecorder, BatchResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.handleBatch(rec, req)
	var resp BatchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad batch JSON: %v\n%s", err, rec.Body)
		}
	}
	return rec, resp
}

func TestQueryEndpoint(t *testing.T) {
	s := testServer(t)
	rec, resp := postQuery(t, s,
		`{"sql": "select p.city from person as p where p.pid = 3", "alpha": 0.5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Columns) != 1 || resp.Columns[0] != "p.city" {
		t.Errorf("columns = %v", resp.Columns)
	}
	if resp.Eta <= 0 || resp.Eta > 1 {
		t.Errorf("eta = %g", resp.Eta)
	}
	if resp.Accessed > resp.Budget {
		t.Errorf("accessed %d > budget %d", resp.Accessed, resp.Budget)
	}
	if resp.Alpha != 0.5 {
		t.Errorf("alpha = %g", resp.Alpha)
	}

	// Same query again: must be a plan-cache hit.
	_, resp = postQuery(t, s,
		`{"sql": "select p.city from person as p where p.pid = 3", "alpha": 0.5}`)
	if !resp.CacheHit {
		t.Error("repeat query missed the plan cache")
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"sql": "select x from", "alpha": 0.1}`, http.StatusUnprocessableEntity},
		{`{"sql": "select p.city from person as p", "alpha": 7}`, http.StatusBadRequest},
		{`{"sql": "select p.city from person as p", "alpha": -0.2}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, _ := postQuery(t, s, c.body)
		if rec.Code != c.code {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.code, rec.Body)
		}
	}
	// GET is rejected.
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}
	if got := s.failures.Value(); got != uint64(len(cases)) {
		t.Errorf("failures = %d, want %d", got, len(cases))
	}
}

func TestHealthzAndStats(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["size"].(float64) <= 0 {
		t.Errorf("health = %v", health)
	}

	postQuery(t, s, `{"sql": "select p.city from person as p"}`)
	postQuery(t, s, `{"sql": "select p.city from person as p"}`)

	rec = httptest.NewRecorder()
	s.handleStats(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["queries"].(float64) != 2 {
		t.Errorf("queries = %v", stats["queries"])
	}
	cache := stats["planCache"].(map[string]any)
	if cache["hits"].(float64) < 1 {
		t.Errorf("cache stats = %v", cache)
	}
	batch := stats["batch"].(map[string]any)
	if batch["queueCap"].(float64) != 256 {
		t.Errorf("batch stats = %v", batch)
	}
}

// TestBatchEndpoint pipelines a mixed batch — valid queries, a parse
// failure — and checks per-entry outcomes arrive in request order.
func TestBatchEndpoint(t *testing.T) {
	s := testServer(t)
	rec, resp := postBatch(t, s, `{"queries": [
		{"sql": "select p.city from person as p where p.pid = 3", "alpha": 0.5},
		{"sql": "select broken from", "alpha": 0.1},
		{"sql": "select h.address from poi as h where h.type = 'hotel'", "alpha": 0.3}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Columns) != 1 {
		t.Errorf("entry 0 = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Error("entry 1: parse failure not reported")
	}
	if resp.Results[2].Error != "" || resp.Results[2].Alpha != 0.3 {
		t.Errorf("entry 2 = %+v", resp.Results[2])
	}
	if resp.Rejected != 0 {
		t.Errorf("rejected = %d", resp.Rejected)
	}
}

func TestBatchEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"queries": []}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, _ := postBatch(t, s, c.body)
		if rec.Code != c.code {
			t.Errorf("body %q: status %d, want %d (%s)", c.body, rec.Code, c.code, rec.Body)
		}
	}
	// Oversized batches are rejected outright.
	var sb strings.Builder
	sb.WriteString(`{"queries": [`)
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"sql": "select p.city from person as p"}`)
	}
	sb.WriteString(`]}`)
	rec, _ := postBatch(t, s, sb.String())
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d", rec.Code)
	}
}

// TestBatchBackpressure drives jobs into a server whose workers never run:
// once the bounded queue is full, further entries must be rejected
// immediately rather than buffered.
func TestBatchBackpressure(t *testing.T) {
	db := fixture.Example1(11, 40, 30)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatal(err)
	}
	// Construct directly (no New): a queue of 2 with no workers draining,
	// so admission is deterministic.
	s := &Server{
		cfg:     Config{System: beas.Open(db, as), QueueDepth: 2, MaxBatch: 16}.withDefaults(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	s.brown, _ = newBrownoutController(BrownoutConfig{Mode: "off"})
	s.queue = make(chan *job, 2)
	s.reg = obs.NewRegistry()
	s.registerMetrics()

	var wg sync.WaitGroup
	entries := make([]BatchEntry, 4)
	rejected := 0
	for i := range entries {
		wg.Add(1)
		j := &job{req: QueryRequest{SQL: "select p.city from person as p"}, entry: &entries[i], wg: &wg}
		select {
		case s.queue <- j:
		default:
			entries[i].Rejected = true
			rejected++
			wg.Done()
		}
	}
	if rejected != 2 {
		t.Fatalf("rejected = %d, want 2 (queue depth 2, 4 jobs)", rejected)
	}
	// Drain the two admitted jobs manually (acting as the worker).
	for i := 0; i < 2; i++ {
		s.runJob(<-s.queue)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if entries[i].Error != "" {
			t.Errorf("admitted entry %d failed: %s", i, entries[i].Error)
		}
	}
}

// TestBatchDeadline: a job whose deadline passed while queued must be
// failed without executing.
func TestBatchDeadline(t *testing.T) {
	s := testServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	entry := &BatchEntry{}
	j := &job{
		req:      QueryRequest{SQL: "select p.city from person as p"},
		deadline: time.Now().Add(-time.Millisecond),
		entry:    entry,
		wg:       &wg,
	}
	s.runJob(j)
	wg.Wait()
	if !entry.TimedOut || entry.Error == "" {
		t.Fatalf("expired job not timed out: %+v", entry)
	}
	if s.expired.Value() != 1 {
		t.Errorf("expired = %d", s.expired.Value())
	}
}

// TestConcurrentRequests drives both handlers from many goroutines — the
// serving-layer face of the System concurrency guarantee (run with -race).
func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	bodies := []string{
		`{"sql": "select p.city from person as p where p.pid = 1", "alpha": 0.3}`,
		`{"sql": "select h.address from poi as h where h.type = 'hotel'", "alpha": 0.2}`,
		`{"sql": "select h.city, count(h.address) as c from poi as h group by h.city", "alpha": 0.4}`,
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if g%2 == 0 {
					req := httptest.NewRequest(http.MethodPost, "/query",
						strings.NewReader(bodies[(g+i)%len(bodies)]))
					rec := httptest.NewRecorder()
					s.handleQuery(rec, req)
					if rec.Code != http.StatusOK {
						errs <- rec.Body.String()
						return
					}
					continue
				}
				body := fmt.Sprintf(`{"queries": [%s, %s]}`,
					bodies[(g+i)%len(bodies)], bodies[(g+i+1)%len(bodies)])
				req := httptest.NewRequest(http.MethodPost, "/batch", strings.NewReader(body))
				rec := httptest.NewRecorder()
				s.handleBatch(rec, req)
				if rec.Code != http.StatusOK {
					errs <- rec.Body.String()
					return
				}
				var resp BatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
					errs <- err.Error()
					return
				}
				for _, e := range resp.Results {
					if e.Error != "" {
						errs <- e.Error
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s.cfg.System.PlanCacheStats().Hits == 0 {
		t.Error("no cache hits under concurrent repeated traffic")
	}
}

// TestWeightedAdmission drives the budget-weighted admission gate directly:
// one job fills the cap, further jobs are refused until the weight is
// released, and a single over-cap job is still admitted when nothing else
// is in flight.
func TestWeightedAdmission(t *testing.T) {
	db := fixture.Example1(11, 40, 30)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{
		cfg: Config{
			System: beas.Open(db, as), DBSize: db.Size(), BudgetCap: db.Size(),
		}.withDefaults(),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	s.brown, _ = newBrownoutController(BrownoutConfig{Mode: "off"})
	s.reg = obs.NewRegistry()
	s.registerMetrics()
	full := s.jobWeight(1.0)
	if full != int64(db.Size()) {
		t.Fatalf("jobWeight(1.0) = %d, want |D| = %d", full, db.Size())
	}
	if w := s.jobWeight(0.01); w < 1 {
		t.Fatalf("jobWeight(0.01) = %d, want >= 1", w)
	}
	if !s.admit(full) {
		t.Fatal("first job refused with an empty pool")
	}
	if s.admit(1) {
		t.Fatal("cap reached but another job was admitted")
	}
	s.inflight.Add(-full)
	if !s.admit(2 * full) {
		t.Fatal("over-cap job refused despite empty pool (would be permanently unservable)")
	}
	if s.admit(1) {
		t.Fatal("admission open while an over-cap job is in flight")
	}
	s.inflight.Add(-2 * full)
	if got := s.inflight.Value(); got != 0 {
		t.Fatalf("in-flight weight leaked: %d", got)
	}
}

// TestBatchWeightedAdmissionEndToEnd: with a cap of one full-budget job and
// a single worker, a batch of three alpha=1 queries admits the first and
// rejects the rest while it is in flight — a giant batch cannot monopolise
// the pool.
func TestBatchWeightedAdmissionEndToEnd(t *testing.T) {
	db := fixture.Example1(11, 120, 80)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		System:    beas.Open(db, as),
		DBSize:    db.Size(),
		BudgetCap: db.Size(), // exactly one alpha=1 job
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	rec, resp := postBatch(t, s, `{"queries": [
		{"sql": "select p.city from person as p", "alpha": 1.0},
		{"sql": "select p.city from person as p", "alpha": 1.0},
		{"sql": "select p.city from person as p", "alpha": 1.0}
	]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if resp.Results[0].Rejected || resp.Results[0].Error != "" {
		t.Fatalf("first entry should run: %+v", resp.Results[0])
	}
	if resp.Rejected != 2 || !resp.Results[1].Rejected || !resp.Results[2].Rejected {
		t.Fatalf("rejected = %d, entries = %+v", resp.Rejected, resp.Results[1:])
	}
	if !strings.Contains(resp.Results[1].Error, "budget cap") {
		t.Errorf("rejection reason = %q", resp.Results[1].Error)
	}
	if got := s.inflight.Value(); got != 0 {
		t.Errorf("in-flight weight after batch = %d, want 0", got)
	}
	// The cap and the (now zero) in-flight weight are visible on /stats.
	recStats := httptest.NewRecorder()
	s.handleStats(recStats, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]any
	if err := json.Unmarshal(recStats.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	batch := stats["batch"].(map[string]any)
	if batch["budgetCap"].(float64) != float64(db.Size()) || batch["inFlightBudget"].(float64) != 0 {
		t.Errorf("stats batch = %v", batch)
	}
}

// TestRunJobCancelledCounted: a job whose parent context is cancelled (the
// batch client disconnected) is aborted and counted as cancelled, not
// expired.
func TestRunJobCancelledCounted(t *testing.T) {
	s := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	entry := &BatchEntry{}
	s.runJob(&job{
		req:      QueryRequest{SQL: "select p.city from person as p"},
		ctx:      ctx,
		deadline: time.Now().Add(time.Hour),
		entry:    entry,
		wg:       &wg,
	})
	wg.Wait()
	if !entry.Cancelled || entry.TimedOut {
		t.Fatalf("entry = %+v, want cancelled (not timed out)", entry)
	}
	if s.cancelled.Value() != 1 || s.expired.Value() != 0 {
		t.Errorf("cancelled = %d, expired = %d", s.cancelled.Value(), s.expired.Value())
	}
}

// TestRunJobMidFlightDeadline: a job whose execution context reports
// deadline expiry during execution (rather than while queued) is abandoned
// mid-flight and recorded as expired with the mid-execution error — the old
// serving layer burned the worker to completion instead. The expiry is
// injected deterministically through an already-expired parent context
// while the job's own admission deadline is still in the future, so the
// pre-execution time check passes and the executor's cooperative
// cancellation is what abandons the work (wall-clock timers are not
// reliable on a starved single-CPU runner; the core-level countdown test
// pins the promptness bound).
func TestRunJobMidFlightDeadline(t *testing.T) {
	s := testServer(t)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	entry := &BatchEntry{}
	s.runJob(&job{
		req:      QueryRequest{SQL: "select p.city from person as p", Alpha: 0.5},
		ctx:      expired,
		deadline: time.Now().Add(time.Hour),
		entry:    entry,
		wg:       &wg,
	})
	wg.Wait()
	if !entry.TimedOut || entry.Cancelled {
		t.Fatalf("entry = %+v, want timed out mid-execution", entry)
	}
	if entry.Error != "deadline exceeded mid-execution" {
		t.Fatalf("error = %q, want mid-execution expiry (pre-execution expiry means the worker never started)", entry.Error)
	}
	if s.expired.Value() != 1 || s.cancelled.Value() != 0 {
		t.Errorf("expired = %d, cancelled = %d", s.expired.Value(), s.cancelled.Value())
	}
}

// TestStreamEndpoint: /stream emits NDJSON — a columns line, one line per
// row, a final summary line consistent with /query on the same request.
func TestStreamEndpoint(t *testing.T) {
	s := testServer(t)
	body := `{"sql": "select h.address from poi as h where h.type = 'hotel'", "alpha": 0.5, "tag": "ndjson"}`
	_, qresp := postQuery(t, s, body)

	req := httptest.NewRequest(http.MethodPost, "/stream", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.handleStream(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	type line struct {
		Columns []string       `json:"columns"`
		Row     []string       `json:"row"`
		Summary *StreamSummary `json:"summary"`
		Error   string         `json:"error"`
	}
	var rows int
	var summary *StreamSummary
	dec := json.NewDecoder(strings.NewReader(rec.Body.String()))
	first := true
	for dec.More() {
		var l line
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		switch {
		case first:
			if len(l.Columns) != 1 || l.Columns[0] != "h.address" {
				t.Fatalf("first line columns = %v", l.Columns)
			}
			first = false
		case l.Row != nil:
			rows++
		case l.Summary != nil:
			summary = l.Summary
		case l.Error != "":
			t.Fatalf("stream error line: %s", l.Error)
		}
	}
	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.Rows != rows {
		t.Errorf("summary rows %d != streamed rows %d", summary.Rows, rows)
	}
	if rows != qresp.Rows {
		t.Errorf("streamed %d rows, /query reports %d", rows, qresp.Rows)
	}
	if summary.Eta != qresp.Eta || summary.Budget != qresp.Budget {
		t.Errorf("summary %+v vs query %+v", summary, qresp)
	}
	// The tagged call shows up in /stats.
	recStats := httptest.NewRecorder()
	s.handleStats(recStats, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]any
	if err := json.Unmarshal(recStats.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	tags := stats["tags"].(map[string]any)
	if _, ok := tags["ndjson"]; !ok {
		t.Errorf("tag missing from stats: %v", tags)
	}
}

// TestStreamEndpointErrors: invalid requests fail before any NDJSON is
// written, with ordinary HTTP error codes.
func TestStreamEndpointErrors(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"sql": "select x from", "alpha": 0.1}`, http.StatusUnprocessableEntity},
		{`{"sql": "select p.city from person as p", "alpha": 9}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(http.MethodPost, "/stream", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		s.handleStream(rec, req)
		if rec.Code != c.code {
			t.Errorf("body %q: status %d, want %d", c.body, rec.Code, c.code)
		}
	}
	rec := httptest.NewRecorder()
	s.handleStream(rec, httptest.NewRequest(http.MethodGet, "/stream", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}
}
