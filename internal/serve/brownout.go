package serve

// Brownout admission control: the server's answer to overload that uses the
// paper's own lever. A BEAS answer is a (resource, accuracy) point — α
// bounds the tuples accessed, η certifies what the answer is worth — so a
// saturated server does not have to choose between queueing (latency
// collapse) and rejecting (goodput collapse): it can serve MORE queries,
// each CHEAPER, by stepping every request's effective α down toward a
// configured floor. Degraded answers are still η-certified; the client
// reads the achieved α and bound off the response and knows exactly what it
// got.
//
// Pressure is the max of four normalised signals — batch queue fill,
// in-flight budget weight against the cap, recent p95 latency against a
// target, and the recent admission-rejection fraction (jobs refused at the
// budget cap or queue are the directest evidence of saturation: a tight cap
// drains in moments, so the occupancy signals alone only spike briefly even
// while most of the offered load is being turned away) — and drives a small
// state machine of degradation levels:
//
//	level 0: normal service
//	level 1: effective α shrinks toward the floor (α/4, never below)
//	level 2: deeper shrink (α/16) and /batch is shed with 503
//	level 3: /query and /stream are shed too; readiness fails
//
// Hysteresis (separate step-up and step-down thresholds) plus a cooldown
// between level changes keep the controller from oscillating on a noisy
// signal. The mode can pin a level (deterministic tests, operator override)
// or disable brownout entirely, which leaves only the reject-only
// backpressure of the queue and budget caps — the baseline the overload
// harness compares against.

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Brownout levels; see the package comment of this file.
const (
	// BrownoutNormal is full service.
	BrownoutNormal = 0
	// BrownoutShrink degrades effective α toward the floor.
	BrownoutShrink = 1
	// BrownoutShedBatch also sheds /batch with 503.
	BrownoutShedBatch = 2
	// BrownoutShedAll sheds /query and /stream too; readiness fails.
	BrownoutShedAll = 3
)

// BrownoutConfig tunes the overload controller. The zero value means
// automatic control with the documented defaults.
type BrownoutConfig struct {
	// Mode selects the controller: "auto" (default) adapts the level to
	// load, "off" disables degradation (reject-only backpressure), and
	// "0".."3" pin a fixed level (operator override, deterministic tests).
	Mode string
	// MinAlpha is the floor the degraded effective α may not cross
	// (default 0.02). A request's own minAlpha, when set, takes precedence
	// for that request. The floor is additionally capped at the request's
	// α — degradation never raises a bound.
	MinAlpha float64
	// StepUp is the pressure above which the level steps up (default 0.8).
	StepUp float64
	// StepDown is the pressure below which the level steps down (default
	// 0.4); the gap between the two is the hysteresis band.
	StepDown float64
	// Cooldown is the minimum time between level changes (default 250ms).
	Cooldown time.Duration
	// LatencyTarget normalises the p95 signal: p95 at the target reads as
	// pressure 1.0 (default 2s; <0 disables the latency signal).
	LatencyTarget time.Duration
	// Window is how many recent latency samples feed the p95 (default 128).
	Window int
	// Smoothing is the time constant of the exponential moving average the
	// step-down decision reads (default 500ms; <0 disables smoothing). A
	// closed-loop client drains the queues during its own round trips, so
	// raw pressure saw-tooths between ~1 and ~0 under a fully saturating
	// load; the EWMA keeps the controller from flapping on those dips.
	// Step-up still reads the raw signal too, so onset stays fast.
	Smoothing time.Duration
}

// withDefaults resolves the zero values.
func (c BrownoutConfig) withDefaults() BrownoutConfig {
	if c.Mode == "" {
		c.Mode = "auto"
	}
	if c.MinAlpha <= 0 {
		c.MinAlpha = 0.02
	}
	if c.StepUp <= 0 {
		c.StepUp = 0.8
	}
	if c.StepDown <= 0 {
		c.StepDown = 0.4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.LatencyTarget == 0 {
		c.LatencyTarget = 2 * time.Second
	}
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Smoothing == 0 {
		c.Smoothing = 500 * time.Millisecond
	}
	return c
}

// brownoutController is the level state machine plus the latency window.
type brownoutController struct {
	cfg    BrownoutConfig
	auto   bool
	pinned int // fixed level when !auto ("off" pins 0)

	mu         sync.Mutex
	level      int
	lastChange time.Time
	shifts     int64 // level changes since start
	smooth     float64
	lastSample time.Time
	rejFrac    float64   // EWMA of the admission-rejection indicator
	lastAdmit  time.Time // last admission attempt (rejection signal decay)
	lat        []time.Duration
	latIdx     int
	latFull    bool
}

// newBrownoutController validates and builds the controller; mode "off" and
// the pinned digits collapse to a fixed level.
func newBrownoutController(cfg BrownoutConfig) (*brownoutController, error) {
	cfg = cfg.withDefaults()
	b := &brownoutController{cfg: cfg, lat: make([]time.Duration, cfg.Window)}
	switch cfg.Mode {
	case "auto":
		b.auto = true
	case "off":
		b.pinned = BrownoutNormal
	case "0", "1", "2", "3":
		b.pinned = int(cfg.Mode[0] - '0')
	default:
		return nil, fmt.Errorf("brownout mode %q (want auto, off, or 0-3)", cfg.Mode)
	}
	return b, nil
}

// observe records one served-query latency into the p95 window.
func (b *brownoutController) observe(d time.Duration) {
	if !b.auto {
		return
	}
	b.mu.Lock()
	b.lat[b.latIdx] = d
	b.latIdx++
	if b.latIdx == len(b.lat) {
		b.latIdx, b.latFull = 0, true
	}
	b.mu.Unlock()
}

// noteAdmission records the outcome of one batch admission attempt into the
// rejection-fraction EWMA (per-sample weight 1/16, so the signal reflects
// roughly the last sixteen attempts).
func (b *brownoutController) noteAdmission(rejected bool) {
	if !b.auto {
		return
	}
	v := 0.0
	if rejected {
		v = 1
	}
	b.mu.Lock()
	b.rejFrac += (v - b.rejFrac) / 16
	b.lastAdmit = time.Now()
	b.mu.Unlock()
}

// rejectionPressure reads the rejection-fraction signal, decayed toward zero
// with the Smoothing time constant since the last admission attempt — so a
// level that sheds /batch entirely (and thus stops producing admission
// samples) releases its own hold instead of pinning the server degraded.
func (b *brownoutController) rejectionPressure(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lastAdmit.IsZero() {
		return 0
	}
	if b.cfg.Smoothing > 0 {
		if dt := now.Sub(b.lastAdmit); dt > 0 {
			return b.rejFrac * math.Exp(-dt.Seconds()/b.cfg.Smoothing.Seconds())
		}
	}
	return b.rejFrac
}

// p95Locked computes the 95th-percentile latency of the window (0 until
// samples exist).
func (b *brownoutController) p95Locked() time.Duration {
	n := b.latIdx
	if b.latFull {
		n = len(b.lat)
	}
	if n == 0 {
		return 0
	}
	tmp := make([]time.Duration, n)
	copy(tmp, b.lat[:n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := n * 95 / 100
	if i >= n {
		i = n - 1
	}
	return tmp[i]
}

// decide advances the level state machine under the given pressure and
// returns the level to serve at. Step-up reads the raw signal (onset must be
// fast); step-down additionally requires the smoothed signal to be low, so a
// momentary queue drain under sustained load does not flap the level.
// Exposed separately from the Server's signal plumbing so the hysteresis/
// cooldown behaviour is unit-testable with synthetic pressures and clocks.
func (b *brownoutController) decide(now time.Time, pressure float64) int {
	if !b.auto {
		return b.pinned
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	smooth := pressure
	if b.cfg.Smoothing > 0 && !b.lastSample.IsZero() {
		decay := math.Exp(-now.Sub(b.lastSample).Seconds() / b.cfg.Smoothing.Seconds())
		if decay > 0 && decay < 1 {
			smooth = pressure + (b.smooth-pressure)*decay
		}
	}
	b.smooth, b.lastSample = smooth, now
	cooled := b.lastChange.IsZero() || now.Sub(b.lastChange) >= b.cfg.Cooldown
	switch {
	case math.Max(pressure, smooth) >= b.cfg.StepUp && b.level < BrownoutShedAll && cooled:
		b.level++
		b.lastChange = now
		b.shifts++
	case pressure <= b.cfg.StepDown && smooth <= b.cfg.StepDown && b.level > BrownoutNormal && cooled:
		b.level--
		b.lastChange = now
		b.shifts++
	}
	return b.level
}

// snapshot returns (level, shifts) without advancing the machine.
func (b *brownoutController) snapshot() (int, int64) {
	if !b.auto {
		return b.pinned, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level, b.shifts
}

// smoothed returns the EWMA of the pressure signal the step-down decision
// reads (0 until the first decide).
func (b *brownoutController) smoothed() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.smooth
}

// pressure folds the server's load signals into one normalised value: the
// max of batch queue fill, in-flight budget weight over the cap, p95 latency
// over the target, and the recent admission-rejection fraction. Max (not
// mean) because any single saturated dimension is enough to take the server
// down. The rejection signal matters when the budget cap is tight relative
// to service time: admitted work drains in moments, so occupancy only spikes
// briefly even while most offered jobs are refused at the door.
func (s *Server) pressure() float64 {
	var p float64
	if c := cap(s.queue); c > 0 {
		p = math.Max(p, float64(len(s.queue))/float64(c))
	}
	if s.cfg.BudgetCap > 0 && s.cfg.BudgetCap != math.MaxInt {
		p = math.Max(p, float64(s.inflight.Value())/float64(s.cfg.BudgetCap))
	}
	if t := s.brown.cfg.LatencyTarget; t > 0 {
		s.brown.mu.Lock()
		p95 := s.brown.p95Locked()
		s.brown.mu.Unlock()
		p = math.Max(p, float64(p95)/float64(t))
	}
	p = math.Max(p, s.brown.rejectionPressure(time.Now()))
	return p
}

// currentLevel evaluates the controller against the live signals. Called on
// every request admission; the work is one mutex hop plus a small sort over
// the latency window.
func (s *Server) currentLevel() int {
	return s.brown.decide(time.Now(), s.pressure())
}

// degradeAlpha maps (requested α, floor, level) to the effective α served:
// each shrink level quarters α again, never below the floor, and the floor
// itself is capped at the request's α (degradation never raises a bound).
func degradeAlpha(alpha, floor float64, level int) float64 {
	if level <= BrownoutNormal {
		return alpha
	}
	if floor > alpha {
		floor = alpha
	}
	shrunk := alpha / math.Pow(4, float64(level))
	if shrunk < floor {
		shrunk = floor
	}
	return shrunk
}

// floorFor resolves the degradation floor for one request: the request's
// own minAlpha when set, else the server-wide floor.
func (s *Server) floorFor(req QueryRequest) float64 {
	if req.MinAlpha > 0 {
		return req.MinAlpha
	}
	return s.brown.cfg.MinAlpha
}
