package baselines

import (
	"math"
	"testing"

	"repro/internal/fixture"
	"repro/internal/query"
	"repro/internal/relation"
)

func countByType() *query.GroupBy {
	return &query.GroupBy{
		In: &query.SPC{
			Atoms:  []query.Atom{{Rel: "poi", Alias: "h"}},
			Output: []query.Col{query.C("h", "type"), query.C("h", "price")},
		},
		Keys: []query.Col{query.C("h", "type")},
		Agg:  query.AggCount,
		On:   query.C("h", "price"),
		As:   "cnt",
	}
}

func TestSamplSynopsisWithinBudget(t *testing.T) {
	db := fixture.Example1(3, 50, 300)
	for _, budget := range []int{10, 50, 200} {
		m := NewSampl(db, budget, 1)
		// Proportional allocation guarantees at least one tuple per
		// relation, so allow that slack.
		if m.SynopsisSize() > budget+len(db.Names()) {
			t.Errorf("budget %d: synopsis %d too large", budget, m.SynopsisSize())
		}
	}
}

func TestSamplDeterministicWithSeed(t *testing.T) {
	db := fixture.Example1(3, 50, 300)
	a := NewSampl(db, 40, 7)
	b := NewSampl(db, 40, 7)
	ra, err := a.Answer(fixture.Q1(1, 95))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Answer(fixture.Q1(1, 95))
	if err != nil {
		t.Fatal(err)
	}
	if ra.Len() != rb.Len() {
		t.Errorf("same seed must give same sample: %d vs %d", ra.Len(), rb.Len())
	}
}

func TestSamplSupportsEverythingAndScalesCounts(t *testing.T) {
	db := fixture.Example1(3, 50, 400)
	m := NewSampl(db, db.Size()/2, 2)
	if !m.Supports(fixture.Q1(1, 95)) || !m.Supports(countByType()) {
		t.Error("Sampl must support all query classes")
	}
	res, err := m.Answer(countByType())
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	total := int64(0)
	for _, tp := range res.Tuples {
		c, _ := tp[1].AsInt()
		total += c
	}
	// Scaled counts should land near |poi| = 400 (within a factor of 2
	// for a 50% sample).
	if total < 200 || total > 800 {
		t.Errorf("scaled count total = %d, want near 400", total)
	}
}

func TestHistoBuckets(t *testing.T) {
	db := fixture.Example1(3, 50, 300)
	m := NewHisto(db, 60)
	if m.SynopsisSize() == 0 {
		t.Fatal("histogram synopsis empty")
	}
	if m.SynopsisSize() > 60+len(db.Names()) {
		t.Errorf("synopsis %d exceeds budget", m.SynopsisSize())
	}
	// Histo supports SPC and aggregate SPC, not RA.
	if !m.Supports(fixture.Q1(1, 95)) {
		t.Error("Histo should support SPC")
	}
	if !m.Supports(countByType()) {
		t.Error("Histo should support aggregate SPC")
	}
	diff := &query.Diff{L: fixture.Q1(1, 200), R: fixture.Q1(1, 95)}
	if m.Supports(diff) {
		t.Error("Histo should not support RA with difference")
	}
	if _, err := m.Answer(fixture.Q1(1, 95)); err != nil {
		t.Errorf("Histo answer: %v", err)
	}
}

func TestHistoRepresentativesApproximatePrices(t *testing.T) {
	db := fixture.Example1(3, 10, 500)
	m := NewHisto(db, 100)
	// Average price of representatives should be near the true average.
	poi := db.MustRelation("poi")
	trueSum, n := 0.0, 0
	pIdx := poi.Schema.MustIndex("price")
	for _, tp := range poi.Tuples {
		f, _ := tp[pIdx].AsFloat()
		trueSum += f
		n++
	}
	trueAvg := trueSum / float64(n)
	syn, _ := m.db.Relation("poi")
	if syn.Len() == 0 {
		t.Fatal("empty poi synopsis")
	}
	sum := 0.0
	for _, tp := range syn.Tuples {
		f, _ := tp[pIdx].AsFloat()
		sum += f
	}
	avg := sum / float64(syn.Len())
	if math.Abs(avg-trueAvg) > 80 {
		t.Errorf("representative avg price %.1f far from true %.1f", avg, trueAvg)
	}
}

func TestQCSExtraction(t *testing.T) {
	queries := []query.Expr{fixture.Q1(1, 95), countByType()}
	qcs := QCSFromQueries(queries)
	byRel := map[string][]string{}
	for _, q := range qcs {
		byRel[q.Rel] = q.Cols
	}
	poiCols := byRel["poi"]
	want := map[string]bool{"type": true, "price": true}
	for _, c := range poiCols {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Errorf("poi QCS = %v, missing %v", poiCols, want)
	}
	if len(byRel["friend"]) == 0 {
		t.Error("friend filter column (pid) missing from QCS")
	}
}

func TestBlinkDBStratifiedAndSupports(t *testing.T) {
	db := fixture.Example1(3, 50, 400)
	qcs := QCSFromQueries([]query.Expr{countByType()})
	m := NewBlinkDB(db, 80, qcs, 3)
	if m.SynopsisSize() > 80+len(db.Names()) {
		t.Errorf("synopsis %d exceeds budget", m.SynopsisSize())
	}
	if m.Supports(fixture.Q1(1, 95)) {
		t.Error("BlinkDB must not support non-aggregate queries")
	}
	minQ := countByType()
	minQ.Agg = query.AggMin
	if m.Supports(minQ) {
		t.Error("BlinkDB must not support min/max")
	}
	if !m.Supports(countByType()) {
		t.Error("BlinkDB must support count aggregates")
	}
	// Stratification: every poi type present in the full data should be
	// present in the sample (that is the point of stratified sampling).
	full, _ := db.Relation("poi")
	syn, _ := m.db.Relation("poi")
	tIdx := full.Schema.MustIndex("type")
	fullTypes := map[string]bool{}
	for _, tp := range full.Tuples {
		s, _ := tp[tIdx].AsString()
		fullTypes[s] = true
	}
	synTypes := map[string]bool{}
	for _, tp := range syn.Tuples {
		s, _ := tp[tIdx].AsString()
		synTypes[s] = true
	}
	for ty := range fullTypes {
		if !synTypes[ty] {
			t.Errorf("type %q missing from stratified sample", ty)
		}
	}
	res, err := m.Answer(countByType())
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if res.Len() == 0 {
		t.Error("BlinkDB returned no groups")
	}
}

func TestBlinkDBUniformFallback(t *testing.T) {
	db := fixture.Example1(3, 40, 200)
	// No QCS at all: falls back to uniform sampling but still answers.
	m := NewBlinkDB(db, 50, nil, 9)
	if m.SynopsisSize() == 0 {
		t.Error("fallback sample empty")
	}
	if _, err := m.Answer(countByType()); err != nil {
		t.Errorf("Answer: %v", err)
	}
}

func TestMethodsHandleTinyBudgets(t *testing.T) {
	db := fixture.Example1(5, 20, 100)
	for _, m := range []*Method{
		NewSampl(db, 1, 1),
		NewHisto(db, 1),
		NewBlinkDB(db, 1, QCSFromQueries([]query.Expr{countByType()}), 1),
	} {
		if _, err := m.Answer(countByType()); err != nil {
			t.Errorf("%s with budget 1: %v", m.Name(), err)
		}
	}
	_ = relation.Null()
}
