// Package baselines implements the three approximate-query-answering
// comparators of the paper's evaluation (§8): Sampl (uniform sampling
// synopsis, after [17]), Histo (multi-dimensional histogram synopsis, after
// [27]) and a BlinkDB-style stratified sampler (after [8], reproducing the
// paper's own manual simulation of BlinkDB's sample-selection strategy).
//
// All three are one-size-fits-all data-reduction schemes (Fig. 1(a)): they
// build a synopsis of at most B = α|D| tuples once, then answer every query
// from the synopsis. Aggregates are scaled by per-relation inverse sampling
// rates, the standard estimator for uniform and stratified samples.
package baselines

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Method is a baseline approximate query answering method.
type Method struct {
	name     string
	db       *relation.Database // the synopsis
	scale    map[string]float64 // per-relation |R| / |synopsis R|
	supports func(query.Expr) bool
}

// Name identifies the method ("Sampl", "Histo", "BlinkDB").
func (m *Method) Name() string { return m.name }

// SynopsisSize returns the total number of synopsis tuples.
func (m *Method) SynopsisSize() int { return m.db.Size() }

// Supports reports whether the method can answer the query class at all
// (the evaluation only scores methods on queries they support, §8).
func (m *Method) Supports(e query.Expr) bool { return m.supports(e) }

// Answer evaluates the query on the synopsis. Sum and count aggregates are
// scaled by the product of the inverse sampling rates of the relations
// involved; min/max/avg and non-aggregate queries are returned as computed.
func (m *Method) Answer(e query.Expr) (*relation.Relation, error) {
	res, err := query.Evaluate(m.db, e)
	if err != nil {
		return nil, err
	}
	g, ok := e.(*query.GroupBy)
	if !ok || (g.Agg != query.AggCount && g.Agg != query.AggSum) {
		return res, nil
	}
	factor := 1.0
	for _, leaf := range query.SPCLeaves(g.In) {
		for _, a := range leaf.Atoms {
			if s, ok := m.scale[a.Rel]; ok {
				factor *= s
			}
		}
	}
	if factor == 1 {
		return res, nil
	}
	aggIdx := res.Schema.Arity() - 1
	out := relation.NewRelation(res.Schema)
	for _, t := range res.Tuples {
		nt := t.Clone()
		if f, okF := nt[aggIdx].AsFloat(); okF {
			if g.Agg == query.AggCount {
				nt[aggIdx] = relation.Int(int64(math.Round(f * factor)))
			} else {
				nt[aggIdx] = relation.Float(f * factor)
			}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// shareBudget splits the synopsis budget across relations proportionally to
// their sizes (at least one tuple per non-empty relation).
func shareBudget(db *relation.Database, budget int) map[string]int {
	total := db.Size()
	out := make(map[string]int)
	if total == 0 {
		return out
	}
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		if r.Len() == 0 {
			continue
		}
		share := budget * r.Len() / total
		if share < 1 {
			share = 1
		}
		if share > r.Len() {
			share = r.Len()
		}
		out[name] = share
	}
	return out
}

// NewSampl builds the uniform-sampling baseline: per relation, a uniform
// random sample without replacement, budget-proportional across relations.
func NewSampl(db *relation.Database, budget int, seed int64) *Method {
	rng := rand.New(rand.NewSource(seed))
	shares := shareBudget(db, budget)
	syn := relation.NewDatabase()
	scale := make(map[string]float64)
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		n := shares[name]
		out := relation.NewRelation(r.Schema)
		if n > 0 && r.Len() > 0 {
			perm := rng.Perm(r.Len())[:n]
			sort.Ints(perm)
			for _, i := range perm {
				out.Tuples = append(out.Tuples, r.Tuples[i])
			}
			scale[name] = float64(r.Len()) / float64(n)
		}
		syn.MustAdd(out)
	}
	return &Method{
		name:     "Sampl",
		db:       syn,
		scale:    scale,
		supports: func(query.Expr) bool { return true },
	}
}

// NewHisto builds the histogram baseline: per relation, an equi-width grid
// over (up to) the two widest numeric attributes, with one representative
// tuple per non-empty bucket — numeric components are bucket means, other
// components the bucket's first value. Representatives are synthetic tuples,
// as in histogram-based set-valued approximation [27].
func NewHisto(db *relation.Database, budget int) *Method {
	shares := shareBudget(db, budget)
	syn := relation.NewDatabase()
	scale := make(map[string]float64)
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		out := histoRelation(r, shares[name])
		if out.Len() > 0 {
			scale[name] = float64(r.Len()) / float64(out.Len())
		}
		syn.MustAdd(out)
	}
	return &Method{
		name:  "Histo",
		db:    syn,
		scale: scale,
		// Histo targets SPC (aggregate or not), per the paper's setup.
		supports: func(e query.Expr) bool {
			if g, ok := e.(*query.GroupBy); ok {
				_, isSPC := g.In.(*query.SPC)
				return isSPC
			}
			_, isSPC := e.(*query.SPC)
			return isSPC
		},
	}
}

func histoRelation(r *relation.Relation, buckets int) *relation.Relation {
	out := relation.NewRelation(r.Schema)
	if r.Len() == 0 || buckets <= 0 {
		return out
	}
	// Pick the two numeric attributes with the widest normalised spread.
	type dim struct {
		idx      int
		lo, hi   float64
		spread   float64
		binCount int
	}
	var dims []dim
	for i, a := range r.Schema.Attrs {
		if a.Type != relation.KindInt && a.Type != relation.KindFloat {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range r.Tuples {
			if f, ok := t[i].AsFloat(); ok {
				lo, hi = math.Min(lo, f), math.Max(hi, f)
			}
		}
		if lo >= hi {
			continue
		}
		scale := a.Dist.Scale
		if a.Dist.Kind != relation.DistNumeric || scale <= 0 {
			scale = 1
		}
		dims = append(dims, dim{idx: i, lo: lo, hi: hi, spread: (hi - lo) / scale})
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i].spread > dims[j].spread })
	if len(dims) > 2 {
		dims = dims[:2]
	}

	key := func(t relation.Tuple) string { return "" }
	switch len(dims) {
	case 0:
		// No numeric spread: group by the first attribute's value, capped.
		groups, _ := r.GroupBy([]string{r.Schema.Attrs[0].Name})
		if len(groups) > buckets {
			groups = groups[:buckets]
		}
		for _, g := range groups {
			out.Tuples = append(out.Tuples, bucketRep(r.Schema, g.Tuples))
		}
		return out
	case 1:
		dims[0].binCount = buckets
	default:
		side := int(math.Sqrt(float64(buckets)))
		if side < 1 {
			side = 1
		}
		dims[0].binCount, dims[1].binCount = side, side
	}
	key = func(t relation.Tuple) string {
		k := ""
		for _, d := range dims {
			f, ok := t[d.idx].AsFloat()
			bin := 0
			if ok {
				bin = int(float64(d.binCount) * (f - d.lo) / (d.hi - d.lo))
				if bin >= d.binCount {
					bin = d.binCount - 1
				}
			} else {
				bin = -1
			}
			k += string(rune('0'+len(k))) + relation.Int(int64(bin)).Key()
		}
		return k
	}
	byBucket := map[string][]relation.Tuple{}
	var order []string
	for _, t := range r.Tuples {
		k := key(t)
		if _, ok := byBucket[k]; !ok {
			order = append(order, k)
		}
		byBucket[k] = append(byBucket[k], t)
	}
	for _, k := range order {
		out.Tuples = append(out.Tuples, bucketRep(r.Schema, byBucket[k]))
	}
	return out
}

// bucketRep builds a bucket's representative: numeric attributes average,
// other attributes take the first tuple's value.
func bucketRep(s *relation.Schema, tuples []relation.Tuple) relation.Tuple {
	rep := tuples[0].Clone()
	for i, a := range s.Attrs {
		if a.Type != relation.KindInt && a.Type != relation.KindFloat {
			continue
		}
		sum, n := 0.0, 0
		for _, t := range tuples {
			if f, ok := t[i].AsFloat(); ok {
				sum += f
				n++
			}
		}
		if n == 0 {
			continue
		}
		mean := sum / float64(n)
		if a.Type == relation.KindInt {
			rep[i] = relation.Int(int64(math.Round(mean)))
		} else {
			rep[i] = relation.Float(mean)
		}
	}
	return rep
}

// QCS is a query column set: the columns of one relation that a workload
// uses for grouping and filtering — BlinkDB's sample-selection input [8].
type QCS struct {
	Rel  string
	Cols []string
}

// QCSFromQueries extracts per-relation QCSs from a historical workload, the
// way BlinkDB assumes "the frequency of columns used for grouping and
// filtering does not change over time".
func QCSFromQueries(queries []query.Expr) []QCS {
	cols := map[string]map[string]bool{}
	add := func(rel, col string) {
		if cols[rel] == nil {
			cols[rel] = map[string]bool{}
		}
		cols[rel][col] = true
	}
	for _, e := range queries {
		for _, leaf := range query.SPCLeaves(e) {
			aliasRel := map[string]string{}
			for _, a := range leaf.Atoms {
				aliasRel[a.Name()] = a.Rel
			}
			for _, p := range leaf.Preds {
				if !p.Join {
					add(aliasRel[p.Left.Rel], p.Left.Attr)
				}
			}
		}
		if g, ok := e.(*query.GroupBy); ok {
			for _, leaf := range query.SPCLeaves(g.In) {
				aliasRel := map[string]string{}
				for _, a := range leaf.Atoms {
					aliasRel[a.Name()] = a.Rel
				}
				for _, k := range g.Keys {
					if rel, ok := aliasRel[k.Rel]; ok {
						add(rel, k.Attr)
					}
				}
			}
		}
	}
	var out []QCS
	var rels []string
	for rel := range cols {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		var cs []string
		for c := range cols[rel] {
			cs = append(cs, c)
		}
		sort.Strings(cs)
		out = append(out, QCS{Rel: rel, Cols: cs})
	}
	return out
}

// NewBlinkDB builds the stratified-sampling baseline: per relation with a
// QCS, up to K rows per distinct QCS value (K sized so the total respects
// the budget); relations without a QCS fall back to uniform samples. It
// supports aggregate SPC queries with sum/count/avg, per the paper ("no
// min/max").
func NewBlinkDB(db *relation.Database, budget int, qcs []QCS, seed int64) *Method {
	rng := rand.New(rand.NewSource(seed))
	shares := shareBudget(db, budget)
	qcsByRel := map[string][]string{}
	for _, q := range qcs {
		qcsByRel[q.Rel] = q.Cols
	}
	syn := relation.NewDatabase()
	scale := make(map[string]float64)
	for _, name := range db.Names() {
		r := db.MustRelation(name)
		share := shares[name]
		out := relation.NewRelation(r.Schema)
		cols, hasQCS := qcsByRel[name]
		if !hasQCS || len(cols) == 0 || r.Len() == 0 || share <= 0 {
			// Uniform fallback.
			if share > 0 && r.Len() > 0 {
				perm := rng.Perm(r.Len())[:share]
				sort.Ints(perm)
				for _, i := range perm {
					out.Tuples = append(out.Tuples, r.Tuples[i])
				}
			}
		} else {
			groups, err := r.GroupBy(cols)
			if err != nil {
				groups = nil
			}
			k := 1
			if len(groups) > 0 {
				k = share / len(groups)
				if k < 1 {
					k = 1
				}
			}
			for _, g := range groups {
				take := k
				if take > len(g.Tuples) {
					take = len(g.Tuples)
				}
				if out.Len()+take > share {
					take = share - out.Len()
				}
				out.Tuples = append(out.Tuples, g.Tuples[:take]...)
				if out.Len() >= share {
					break
				}
			}
		}
		if out.Len() > 0 {
			scale[name] = float64(r.Len()) / float64(out.Len())
		}
		syn.MustAdd(out)
	}
	return &Method{
		name:  "BlinkDB",
		db:    syn,
		scale: scale,
		supports: func(e query.Expr) bool {
			g, ok := e.(*query.GroupBy)
			if !ok {
				return false
			}
			if g.Agg == query.AggMin || g.Agg == query.AggMax {
				return false
			}
			_, isSPC := g.In.(*query.SPC)
			return isSPC
		},
	}
}
