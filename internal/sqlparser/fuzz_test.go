package sqlparser

import (
	"testing"

	"repro/internal/query"
)

// fuzzSeeds is the seed corpus: the valid queries of the unit tests, the
// paper's examples, render-style output (quoted strings, parenthesized
// set operations) and a handful of near-miss inputs that exercise error
// paths in the lexer and parser.
var fuzzSeeds = []string{
	// Valid queries from the test suite and the paper.
	`select h.address, h.price
		from poi as h, friend as f, person as p
		where f.pid = 0 and f.fid = p.pid and p.city = h.city
		and h.type = 'hotel' and h.price <= 95`,
	`select h.city, count(h.address) as cnt
		from poi as h where h.type = 'hotel' group by h.city`,
	`select h.city, sum(h.price) from poi as h`,
	`select h.address from poi as h where h.price <= 95
		union select h.address from poi as h where h.type = 'bar'
		except select h.address from poi as h where h.city = 'NYC'`,
	`select l.qty from lineitem as l where l.discount <= 0.05`,
	`select r.count from routes as r`,
	`select p.city from person as p where p.pid >= -3`,
	// Render-shaped input: explicit parens and quoted constants.
	`(select h.address from poi as h) UNION ((select h.address from poi as h
		where h.city = 'NYC') EXCEPT (select h.address from poi as h))`,
	`select h.price from poi as h where h.price <= 95.0`,
	`select min(h.price) as agg from poi as h`,
	`select a.b from x where a.b = 'it''s'`,
	// Error paths.
	"",
	"select from x",
	"select a.b from x where a.b ~ 3",
	"select a.b from x where a.b < c.d",
	"select a.b, count(a.c), sum(a.d) from x",
	"select a.b from x group by a.b",
	"((select a.b from x)",
	"select a.b from x union",
	"select a.b from x where a.b = 'unterminated",
	"select a.b from x where a.b = 99999999999999999999",
}

// FuzzParseSQL checks that the parser never panics on arbitrary input, and
// that parsing is a retraction of rendering: whenever Parse succeeds, the
// rendered text re-parses, and rendering the re-parse reproduces the text
// exactly (so Render output is a canonical form and safe to use as a
// plan-cache key).
func FuzzParseSQL(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		e, err := Parse(sql)
		if err != nil {
			return // invalid input is fine; panics are not
		}
		r1 := query.Render(e)
		e2, err := Parse(r1)
		if err != nil {
			t.Fatalf("rendered query does not re-parse: %v\ninput:    %q\nrendered: %q", err, sql, r1)
		}
		if r2 := query.Render(e2); r2 != r1 {
			t.Fatalf("render not canonical:\ninput:  %q\nfirst:  %q\nsecond: %q", sql, r1, r2)
		}
	})
}

// TestEscapedQuoteRoundTrip pins the SQL quote escaping: Render must stay
// injective (it doubles as the plan-cache key), so a string constant
// containing a quote may not render identically to a two-predicate query.
func TestEscapedQuoteRoundTrip(t *testing.T) {
	e, err := Parse(`select a.b from x where a.b = 'it''s'`)
	if err != nil {
		t.Fatal(err)
	}
	r := query.Render(e)
	if want := `select a.b from x where a.b = 'it''s'`; r != want {
		t.Fatalf("render = %q, want %q", r, want)
	}
	e2, err := Parse(r)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if r2 := query.Render(e2); r2 != r {
		t.Fatalf("unstable render: %q != %q", r2, r)
	}
}
