package sqlparser

import (
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func parse(t *testing.T, sql string) query.Expr {
	t.Helper()
	e, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return e
}

func TestParseQ1(t *testing.T) {
	// The paper's Q1, §1.
	e := parse(t, `select h.address, h.price
		from poi as h, friend as f, person as p
		where f.pid = 0 and f.fid = p.pid and p.city = h.city
		and h.type = 'hotel' and h.price <= 95`)
	spc, ok := e.(*query.SPC)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if len(spc.Atoms) != 3 || spc.Atoms[0].Alias != "h" || spc.Atoms[2].Rel != "person" {
		t.Errorf("atoms = %v", spc.Atoms)
	}
	if len(spc.Preds) != 5 {
		t.Fatalf("preds = %v", spc.Preds)
	}
	if !spc.Preds[1].Join || spc.Preds[1].Op != query.OpEq {
		t.Errorf("join pred = %v", spc.Preds[1])
	}
	if spc.Preds[3].Join || !spc.Preds[3].Const.Equal(relation.String("hotel")) {
		t.Errorf("string pred = %v", spc.Preds[3])
	}
	if v, _ := spc.Preds[4].Const.AsInt(); spc.Preds[4].Op != query.OpLe || v != 95 {
		t.Errorf("<= pred = %v", spc.Preds[4])
	}
	if len(spc.Output) != 2 || spc.Output[0] != query.C("h", "address") {
		t.Errorf("output = %v", spc.Output)
	}
}

func TestParseAggregate(t *testing.T) {
	e := parse(t, `select h.city, count(h.address) as cnt
		from poi as h where h.type = 'hotel' group by h.city`)
	g, ok := e.(*query.GroupBy)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if g.Agg != query.AggCount || g.As != "cnt" {
		t.Errorf("agg = %v as %q", g.Agg, g.As)
	}
	if len(g.Keys) != 1 || g.Keys[0] != query.C("h", "city") {
		t.Errorf("keys = %v", g.Keys)
	}
	if g.On != query.C("h", "address") {
		t.Errorf("on = %v", g.On)
	}
}

func TestParseAggregateWithoutGroupByClause(t *testing.T) {
	// Keys default to the plain select items.
	e := parse(t, `select h.city, sum(h.price) from poi as h`)
	g, ok := e.(*query.GroupBy)
	if !ok || len(g.Keys) != 1 {
		t.Fatalf("got %T %v", e, e)
	}
	if g.As != "sum" {
		t.Errorf("default name = %q", g.As)
	}
}

func TestParseUnionExcept(t *testing.T) {
	e := parse(t, `select h.address from poi as h where h.price <= 95
		union select h.address from poi as h where h.type = 'bar'
		except select h.address from poi as h where h.city = 'NYC'`)
	d, ok := e.(*query.Diff)
	if !ok {
		t.Fatalf("got %T, want Diff at top (left assoc)", e)
	}
	if _, ok := d.L.(*query.Union); !ok {
		t.Errorf("left = %T, want Union", d.L)
	}
	if query.NumRelations(e) != 3 {
		t.Errorf("leaves = %d", query.NumRelations(e))
	}
}

func TestParseFloats(t *testing.T) {
	e := parse(t, `select l.qty from lineitem as l where l.discount <= 0.05`)
	spc := e.(*query.SPC)
	if f, _ := spc.Preds[0].Const.AsFloat(); f != 0.05 {
		t.Errorf("const = %v", spc.Preds[0].Const)
	}
}

func TestParseIdentNamedLikeAggregate(t *testing.T) {
	// "count" used as a plain column name must not be eaten as an
	// aggregate call.
	e := parse(t, `select r.count from routes as r`)
	spc, ok := e.(*query.SPC)
	if !ok || spc.Output[0] != query.C("r", "count") {
		t.Fatalf("got %T %v", e, e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select from x",
		"select a.b from",
		"select a.b from x where",
		"select a.b from x where a.b ~ 3",
		"select unqualified from x",
		"select a.b from x where a.b < c.d",       // < between columns
		"select a.b, count(a.c), sum(a.d) from x", // two aggregates
		"select a.b from x group by a.b",          // group by without aggregate
		"select a.b from x trailing",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseRoundTripThroughRender(t *testing.T) {
	sql := `select h.address, h.price from poi as h, friend as f, person as p where f.pid = 0 and f.fid = p.pid and p.city = h.city and h.type = 'hotel' and h.price <= 95`
	e := parse(t, sql)
	// Render emits the same SQL shape modulo quoting; re-parsing the
	// rendered string with quotes restored must give the same structure.
	rendered := query.Render(e)
	if rendered == "" {
		t.Fatal("empty render")
	}
}
