// Package sqlparser parses a small SQL subset into the query AST: the
// fragment the paper's evaluation exercises — select / from / where with
// conjunctive predicates, aliases, group-by with a single aggregate, and
// UNION / EXCEPT between select statements.
//
// Grammar (case-insensitive keywords):
//
//	query  := unit (("union" | "except") unit)*
//	unit   := select | "(" query ")"
//	select := "select" items "from" tables ["where" pred ("and" pred)*]
//	          ["group by" cols]
//	items  := item ("," item)*
//	item   := col | agg "(" col ")" ["as" ident]
//	tables := table ("," table)* ; table := ident ["as" ident]
//	pred   := col op (const | col) ; op := "=" | "<=" | ">=" | "<" | ">"
//	col    := ident "." ident
//	const  := number | "'" chars "'"
//
// Column references must be alias-qualified; UNION/EXCEPT associate left.
package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/query"
	"repro/internal/relation"
)

// Parse parses the SQL text into a query expression.
func Parse(sql string) (query.Expr, error) {
	p := &parser{toks: lex(sql)}
	e, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("sqlparser: unexpected %q after query", p.peek().text)
	}
	return e, nil
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokSymbol
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			// A doubled quote inside a string literal is an escaped quote
			// ('it''s' → it's), as in standard SQL.
			var sb strings.Builder
			j := i + 1
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String()})
			i = j + 1
		case unicode.IsDigit(c) || c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1])):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		case c == '<' || c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokSymbol, s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, string(c)})
				i++
			}
		case strings.ContainsRune("=,().*", c):
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		default:
			toks = append(toks, token{tokSymbol, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool     { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) reset(pos int) { p.pos = pos }

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sqlparser: expected %q, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlparser: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *parser) parseQuery() (query.Expr, error) {
	left, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.keyword("union"):
			right, err := p.parseUnit()
			if err != nil {
				return nil, err
			}
			left = &query.Union{L: left, R: right}
		case p.keyword("except"):
			right, err := p.parseUnit()
			if err != nil {
				return nil, err
			}
			left = &query.Diff{L: left, R: right}
		default:
			return left, nil
		}
	}
}

// parseUnit parses one operand of a UNION/EXCEPT chain: a plain select or a
// parenthesized query. Parentheses make any association expressible (and
// let query.Render's explicitly parenthesized output parse back).
func (p *parser) parseUnit() (query.Expr, error) {
	if p.symbol("(") {
		e, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.symbol(")") {
			return nil, fmt.Errorf("sqlparser: expected ) to close subquery, got %q", p.peek().text)
		}
		return e, nil
	}
	return p.parseSelect()
}

var aggNames = map[string]query.AggKind{
	"min": query.AggMin, "max": query.AggMax,
	"sum": query.AggSum, "count": query.AggCount, "avg": query.AggAvg,
}

type selectItem struct {
	col   query.Col
	isAgg bool
	agg   query.AggKind
	as    string
}

func (p *parser) parseSelect() (query.Expr, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	var items []selectItem
	for {
		item, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	spc := &query.SPC{}
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias := rel
		if p.keyword("as") {
			alias, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		spc.Atoms = append(spc.Atoms, query.Atom{Rel: rel, Alias: alias})
		if !p.symbol(",") {
			break
		}
	}
	if p.keyword("where") {
		for {
			pd, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			spc.Preds = append(spc.Preds, pd)
			if !p.keyword("and") {
				break
			}
		}
	}
	var groupCols []query.Col
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			groupCols = append(groupCols, c)
			if !p.symbol(",") {
				break
			}
		}
	}
	return assemble(spc, items, groupCols)
}

func assemble(spc *query.SPC, items []selectItem, groupCols []query.Col) (query.Expr, error) {
	var aggItem *selectItem
	var plain []query.Col
	for i := range items {
		if items[i].isAgg {
			if aggItem != nil {
				return nil, fmt.Errorf("sqlparser: at most one aggregate per select")
			}
			aggItem = &items[i]
		} else {
			plain = append(plain, items[i].col)
		}
	}
	if aggItem == nil {
		if len(groupCols) > 0 {
			return nil, fmt.Errorf("sqlparser: group by requires an aggregate")
		}
		spc.Output = plain
		return spc, nil
	}
	keys := groupCols
	if keys == nil {
		keys = plain
	}
	spc.Output = append(append([]query.Col{}, keys...), aggItem.col)
	as := aggItem.as
	if as == "" {
		as = aggItem.agg.String()
	}
	return &query.GroupBy{In: spc, Keys: keys, Agg: aggItem.agg, On: aggItem.col, As: as}, nil
}

func (p *parser) parseItem() (selectItem, error) {
	start := p.save()
	if t := p.peek(); t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToLower(t.text)]; ok {
			p.pos++
			if p.symbol("(") {
				col, err := p.parseCol()
				if err != nil {
					return selectItem{}, err
				}
				if !p.symbol(")") {
					return selectItem{}, fmt.Errorf("sqlparser: expected ) after aggregate")
				}
				item := selectItem{col: col, isAgg: true, agg: agg}
				if p.keyword("as") {
					as, err := p.ident()
					if err != nil {
						return selectItem{}, err
					}
					item.as = as
				}
				return item, nil
			}
			p.reset(start) // an identifier that happens to be named like an aggregate
		}
	}
	col, err := p.parseCol()
	if err != nil {
		return selectItem{}, err
	}
	return selectItem{col: col}, nil
}

func (p *parser) parseCol() (query.Col, error) {
	rel, err := p.ident()
	if err != nil {
		return query.Col{}, err
	}
	if !p.symbol(".") {
		return query.Col{}, fmt.Errorf("sqlparser: column reference %q must be alias-qualified (alias.attr)", rel)
	}
	attr, err := p.ident()
	if err != nil {
		return query.Col{}, err
	}
	return query.C(rel, attr), nil
}

func (p *parser) parsePred() (query.Pred, error) {
	left, err := p.parseCol()
	if err != nil {
		return query.Pred{}, err
	}
	opTok := p.next()
	var op query.CmpOp
	switch opTok.text {
	case "=":
		op = query.OpEq
	case "<=":
		op = query.OpLe
	case ">=":
		op = query.OpGe
	case "<":
		op = query.OpLt
	case ">":
		op = query.OpGt
	default:
		return query.Pred{}, fmt.Errorf("sqlparser: unknown operator %q", opTok.text)
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return query.Pred{}, fmt.Errorf("sqlparser: bad number %q: %w", t.text, err)
			}
			return query.Pred{Op: op, Left: left, Const: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return query.Pred{}, fmt.Errorf("sqlparser: bad number %q: %w", t.text, err)
		}
		return query.Pred{Op: op, Left: left, Const: relation.Int(n)}, nil
	case tokString:
		p.pos++
		return query.Pred{Op: op, Left: left, Const: relation.String(t.text)}, nil
	case tokIdent:
		right, err := p.parseCol()
		if err != nil {
			return query.Pred{}, err
		}
		if op != query.OpEq && op != query.OpLe {
			return query.Pred{}, fmt.Errorf("sqlparser: only = and <= are supported between columns")
		}
		return query.Pred{Op: op, Left: left, Join: true, Right: right}, nil
	default:
		return query.Pred{}, fmt.Errorf("sqlparser: expected constant or column after operator, got %q", t.text)
	}
}
