package plan

import (
	"context"
	"testing"

	"repro/internal/fixture"
	"repro/internal/query"
	"repro/internal/relation"
)

// The precompiled fast evaluator must agree with the dynamic reference path
// row for row (values, order and weights) whenever both are applicable.
func TestFastEvalMatchesDynamic(t *testing.T) {
	db, as := setup(t)
	queries := []*query.SPC{
		fixture.Q1(3, 95),
		fixture.Q1(1, 250),
		fixture.Q2(5),
		{ // join with duplicate build keys: many friend rows share fid
			Atoms: []query.Atom{{Rel: "person", Alias: "p"}, {Rel: "friend", Alias: "f"}},
			Preds: []query.Pred{
				query.EqJ(query.C("p", "pid"), query.C("f", "fid")),
			},
			Output: []query.Col{query.C("p", "city"), query.C("f", "pid")},
		},
	}
	for qi, q := range queries {
		for _, budget := range []int{40, 400, db.Size()} {
			res := mustChase(t, q, as, db, budget)
			p := NewBounded(res, budget)
			atoms, _, err := ExecuteFetch(p, db)
			if err != nil {
				t.Fatalf("q%d budget %d: fetch: %v", qi, budget, err)
			}
			got, gotErr := EvaluateFetched(p, db, atoms)
			want, wantErr := evaluateDynamic(context.Background(), p, db, atoms)
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("q%d budget %d: err %v vs dynamic %v", qi, budget, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if len(got.Rel.Tuples) != len(want.Rel.Tuples) {
				t.Fatalf("q%d budget %d: %d rows vs dynamic %d", qi, budget, len(got.Rel.Tuples), len(want.Rel.Tuples))
			}
			for i := range got.Rel.Tuples {
				if !got.Rel.Tuples[i].EqualTuple(want.Rel.Tuples[i]) {
					t.Fatalf("q%d budget %d row %d: %v vs dynamic %v", qi, budget, i, got.Rel.Tuples[i], want.Rel.Tuples[i])
				}
				if got.Weights[i] != want.Weights[i] {
					t.Fatalf("q%d budget %d row %d: weight %d vs dynamic %d", qi, budget, i, got.Weights[i], want.Weights[i])
				}
			}
		}
	}
}

// The full-budget plan must actually take the precompiled path — guard
// against the fast path silently decaying to the fallback.
func TestFastPathSelected(t *testing.T) {
	db, as := setup(t)
	q := fixture.Q1(3, 95)
	res := mustChase(t, q, as, db, db.Size())
	p := NewBounded(res, db.Size())
	atoms, stats, err := ExecuteFetch(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Fatal("full-budget fetch should not truncate")
	}
	lay, err := p.layoutFor(db)
	if err != nil {
		t.Fatal(err)
	}
	if lay.eval == nil {
		t.Fatal("eval layout not precompiled for Q1")
	}
	if !layoutMatches(lay, atoms) {
		t.Fatal("fetched atoms do not carry the precompiled schemas")
	}
}

// Targeted regression for the hash-join build loop: with duplicate join
// keys on the build side, the join must still produce exactly the exact
// evaluator's answers (the original loop computed the projected key twice
// per row; the rewrite projects once and buckets by hash).
func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	db, as := setup(t)
	q := &query.SPC{
		Atoms: []query.Atom{{Rel: "person", Alias: "p"}, {Rel: "friend", Alias: "f"}},
		Preds: []query.Pred{
			query.EqJ(query.C("p", "pid"), query.C("f", "fid")),
		},
		Output: []query.Col{query.C("p", "city"), query.C("f", "pid")},
	}
	budget := db.Size()
	res := mustChase(t, q, as, db, budget)
	out, err := Execute(NewBounded(res, budget), db)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := query.EvaluateSet(db, q)
	if err != nil {
		t.Fatal(err)
	}
	got, want := asSet(out.Rel), asSet(exact)
	for k := range want {
		if !got[k] {
			t.Fatalf("missing joined tuple %q", k)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("join produced %d distinct tuples, exact has %d", len(got), len(want))
	}
	// Sanity: duplicate fids exist, so the build side really had bucket
	// chains longer than one.
	fids := relation.NewTupleMap[int](0)
	friend := db.MustRelation("friend")
	fi := friend.Schema.MustIndex("fid")
	dups := 0
	for _, tp := range friend.Tuples {
		c := fids.GetOrInsert(relation.Tuple{tp[fi]})
		*c++
		if *c == 2 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("fixture produced no duplicate build keys; test is vacuous")
	}
}
