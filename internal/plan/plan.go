// Package plan executes bounded query plans (paper §2.2): canonical plans
// ξα = (ξF, ξE) where ξF is a sequence of fetch(X ∈ T, R, Y, ψ) operations
// over the indices of an access schema and ξE evaluates the (relaxed)
// relational operations of the query on the fetched data.
//
// The executor accounts every tuple returned by an index lookup against the
// budget B = α|D| and truncates fetching if the budget would be exceeded —
// a runtime backstop behind the planner's data-independent tariff estimate.
// Fetched rows carry count annotations (how many base tuples a sample
// represents), which §7's sum/count/avg aggregation consumes.
package plan

import (
	"fmt"
	"math"

	"repro/internal/chase"
	"repro/internal/query"
	"repro/internal/relation"
)

// Bounded is an α-bounded plan: a chased fetch-plan skeleton plus a level
// assignment for its template steps (chAT's output) and the budget.
type Bounded struct {
	Chase  *chase.Result
	Ks     []int
	Budget int
}

// NewBounded wraps a chase result with its initial level assignment.
func NewBounded(c *chase.Result, budget int) *Bounded {
	return &Bounded{Chase: c, Ks: c.Levels(), Budget: budget}
}

// ResolutionOf exposes the fetch resolution of (atom, attr) under the
// plan's current level assignment.
func (p *Bounded) ResolutionOf(atom int, attr string) float64 {
	return p.Chase.ResolutionOf(atom, attr, p.Ks)
}

// Tariff estimates the plan's data access from schema metadata alone.
func (p *Bounded) Tariff() int { return p.Chase.Tariff(p.Ks) }

// Stats reports what a plan execution actually touched.
type Stats struct {
	// Accessed counts tuples returned by index lookups.
	Accessed int
	// Truncated reports whether fetching stopped early on budget
	// exhaustion.
	Truncated bool
}

// FetchedAtom is the data fetched for one atom of the SPC body: a relation
// over the fetched attributes (unqualified names) with per-row count
// annotations.
type FetchedAtom struct {
	Alias   string
	Rel     *relation.Relation
	Weights []int
}

// Result is an executed plan's output: the (bag) answers with per-row
// weights (products of sample counts along the join) and access statistics.
type Result struct {
	Rel     *relation.Relation
	Weights []int
	Stats   Stats
}

// Execute runs the full plan: fetch then relaxed evaluation, accounting
// accesses against p.Budget.
func Execute(p *Bounded, db *relation.Database) (*Result, error) {
	return ExecuteWithBudget(p, db, p.Budget)
}

// ExecuteWithBudget runs the full plan against an explicit access budget,
// leaving the plan itself untouched. Plans are immutable once generated, so
// the same *Bounded may be executed concurrently from many goroutines (each
// call builds its own fetch state); the budget is per-call because callers
// partition one global α|D| budget across the leaves of a larger plan.
func ExecuteWithBudget(p *Bounded, db *relation.Database, budget int) (*Result, error) {
	atoms, stats, err := executeFetch(p, db, budget)
	if err != nil {
		return nil, err
	}
	res, err := EvaluateFetched(p, db, atoms)
	if err != nil {
		return nil, err
	}
	res.Stats = *stats
	return res, nil
}

// ExecuteFetch runs ξF with the plan's own budget.
func ExecuteFetch(p *Bounded, db *relation.Database) ([]*FetchedAtom, *Stats, error) {
	return executeFetch(p, db, p.Budget)
}

// executeFetch runs ξF: it applies the chase steps in order against the
// access-schema indices, materialising one relation per atom.
func executeFetch(p *Bounded, db *relation.Database, budget int) ([]*FetchedAtom, *Stats, error) {
	q := p.Chase.Query
	stats := &Stats{}
	atoms := make([]*FetchedAtom, len(q.Atoms))

	for si := range p.Chase.Steps {
		s := &p.Chase.Steps[si]
		k := s.K
		if !s.Pinned && p.Ks != nil {
			k = p.Ks[si]
		}
		if err := applyStep(p, db, atoms, s, si, k, budget, stats); err != nil {
			return nil, nil, err
		}
		if stats.Truncated {
			break
		}
	}
	// Atoms with no fetched data (possible after truncation) become empty
	// relations over their used attributes so evaluation degrades cleanly.
	for ai := range atoms {
		if atoms[ai] == nil {
			atoms[ai] = emptyAtom(db, q, p.Chase, ai)
		}
	}
	return atoms, stats, nil
}

func emptyAtom(db *relation.Database, q *query.SPC, c *chase.Result, ai int) *FetchedAtom {
	base := db.MustRelation(q.Atoms[ai].Rel)
	attrs := c.UsedAttrs(ai)
	as := make([]relation.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = base.Schema.Attrs[base.Schema.MustIndex(a)]
	}
	sch, err := relation.NewSchema(q.Atoms[ai].Name(), as...)
	if err != nil {
		// Used attrs come from the base schema; duplicates are impossible.
		panic(err)
	}
	return &FetchedAtom{Alias: q.Atoms[ai].Name(), Rel: relation.NewRelation(sch)}
}

// applyStep runs one fetch operation, extending (or creating) the atom's
// fetched relation.
func applyStep(p *Bounded, db *relation.Database, atoms []*FetchedAtom, s *chase.Step, si, k, budget int, stats *Stats) error {
	q := p.Chase.Query
	ai := s.AtomIdx
	base := db.MustRelation(q.Atoms[ai].Rel)
	cur := atoms[ai]

	// Split X positions into own (already columns of this atom's fetched
	// relation) and external (constants or other atoms' columns).
	type extSrc struct {
		pos   int
		vals  []relation.Tuple // single-col tuples
		joint []int            // positions sharing one source atom
	}
	ownPos := map[int]int{} // X position -> column index in cur
	var extGroups [][]int   // groups of X positions fetched jointly
	groupOf := map[string]int{}
	var constPos []int
	for xi := range s.Ladder.X {
		attr := s.Ladder.X[xi]
		if cur != nil {
			if ci, ok := cur.Rel.Schema.Index(attr); ok {
				ownPos[xi] = ci
				continue
			}
		}
		src := s.X[xi]
		if src.IsConst {
			constPos = append(constPos, xi)
			continue
		}
		gk := fmt.Sprintf("atom%d", src.AtomIdx)
		gi, ok := groupOf[gk]
		if !ok {
			gi = len(extGroups)
			groupOf[gk] = gi
			extGroups = append(extGroups, nil)
		}
		extGroups[gi] = append(extGroups[gi], xi)
	}

	// Materialise distinct joint valuations per external group.
	extVals := make([][]relation.Tuple, len(extGroups))
	for gi, positions := range extGroups {
		srcAtom := s.X[positions[0]].AtomIdx
		fa := atoms[srcAtom]
		if fa == nil {
			return fmt.Errorf("plan: step %d reads atom %d before it was fetched", si, srcAtom)
		}
		idx := make([]int, len(positions))
		for i, xi := range positions {
			ci, ok := fa.Rel.Schema.Index(s.X[xi].Attr)
			if !ok {
				return fmt.Errorf("plan: step %d: source column %s missing on atom %d", si, s.X[xi].Attr, srcAtom)
			}
			idx[i] = ci
		}
		seen := map[string]bool{}
		for _, t := range fa.Rel.Tuples {
			pt := t.Project(idx)
			key := pt.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			extVals[gi] = append(extVals[gi], pt)
		}
	}

	// New columns this step adds to the atom relation.
	var newAttrs []string
	isNew := map[string]bool{}
	addNew := func(a string) {
		if isNew[a] {
			return
		}
		if cur != nil {
			if _, ok := cur.Rel.Schema.Index(a); ok {
				return
			}
		}
		isNew[a] = true
		newAttrs = append(newAttrs, a)
	}
	for _, xi := range constPos {
		addNew(s.Ladder.X[xi])
	}
	for _, g := range extGroups {
		for _, xi := range g {
			addNew(s.Ladder.X[xi])
		}
	}
	for _, y := range s.Ladder.Y {
		addNew(y)
	}

	// Build the new schema.
	var schemaAttrs []relation.Attribute
	if cur != nil {
		schemaAttrs = append(schemaAttrs, cur.Rel.Schema.Attrs...)
	}
	for _, a := range newAttrs {
		schemaAttrs = append(schemaAttrs, base.Schema.Attrs[base.Schema.MustIndex(a)])
	}
	newSchema, err := relation.NewSchema(q.Atoms[ai].Name(), schemaAttrs...)
	if err != nil {
		return fmt.Errorf("plan: step %d schema: %w", si, err)
	}
	out := &FetchedAtom{Alias: q.Atoms[ai].Name(), Rel: relation.NewRelation(newSchema)}

	newPos := make(map[string]int, len(newAttrs))
	for i, a := range newAttrs {
		off := 0
		if cur != nil {
			off = cur.Rel.Schema.Arity()
		}
		newPos[a] = off + i
	}

	// Fetch cache: one index lookup per distinct X-value per step.
	cache := map[string][]access0{}
	fetch := func(xt relation.Tuple) []access0 {
		key := xt.Key()
		if got, ok := cache[key]; ok {
			return got
		}
		if stats.Truncated {
			cache[key] = nil
			return nil
		}
		samples := s.Ladder.Fetch(key, k)
		if stats.Accessed+len(samples) > budget {
			// Budget backstop: take what fits, then stop fetching.
			room := budget - stats.Accessed
			if room < 0 {
				room = 0
			}
			samples = samples[:room]
			stats.Truncated = true
		}
		stats.Accessed += len(samples)
		conv := make([]access0, len(samples))
		for i, smp := range samples {
			conv[i] = access0{y: smp.Y, count: smp.Count}
		}
		cache[key] = conv
		return conv
	}

	// Enumerate rows: existing rows (or one virtual row) × external
	// valuations × samples.
	emit := func(prefix relation.Tuple, w int, xFill map[int]relation.Value) {
		// Assemble the X tuple in ladder order.
		xt := make(relation.Tuple, len(s.Ladder.X))
		for xi := range s.Ladder.X {
			if ci, ok := ownPos[xi]; ok {
				xt[xi] = prefix[ci]
				continue
			}
			if v, ok := xFill[xi]; ok {
				xt[xi] = v
				continue
			}
			// Constant.
			xt[xi] = s.X[xi].Const
		}
		for _, smp := range fetch(xt) {
			row := make(relation.Tuple, newSchema.Arity())
			copy(row, prefix)
			for xi, a := range s.Ladder.X {
				if pos, ok := newPos[a]; ok {
					row[pos] = xt[xi]
				}
			}
			for yi, a := range s.Ladder.Y {
				if pos, ok := newPos[a]; ok {
					row[pos] = smp.y[yi]
				}
			}
			out.Rel.Tuples = append(out.Rel.Tuples, row)
			out.Weights = append(out.Weights, w*smp.count)
		}
	}

	// Walk the cross product of external groups.
	var walkExt func(gi int, fill map[int]relation.Value, prefix relation.Tuple, w int)
	walkExt = func(gi int, fill map[int]relation.Value, prefix relation.Tuple, w int) {
		if gi == len(extGroups) {
			emit(prefix, w, fill)
			return
		}
		for _, vt := range extVals[gi] {
			for i, xi := range extGroups[gi] {
				fill[xi] = vt[i]
			}
			walkExt(gi+1, fill, prefix, w)
		}
	}

	if cur == nil {
		walkExt(0, map[int]relation.Value{}, relation.Tuple{}, 1)
	} else {
		for ri, t := range cur.Rel.Tuples {
			walkExt(0, map[int]relation.Value{}, t, cur.Weights[ri])
		}
	}
	atoms[ai] = out
	return nil
}

type access0 struct {
	y     relation.Tuple
	count int
}

// EvaluateFetched runs ξE: the query's relational operations over the
// fetched atoms, with selection and join conditions relaxed by the fetch
// resolutions of the attributes involved (paper §5, "evaluation plan").
func EvaluateFetched(p *Bounded, db *relation.Database, atoms []*FetchedAtom) (*Result, error) {
	q := p.Chase.Query
	outSchema, err := query.OutputSchema(q, db)
	if err != nil {
		return nil, err
	}
	aliasIdx := make(map[string]int, len(q.Atoms))
	for i, a := range q.Atoms {
		aliasIdx[a.Name()] = i
	}
	resOf := func(c query.Col) float64 {
		return p.Chase.ResolutionOf(aliasIdx[c.Rel], c.Attr, p.Ks)
	}
	distOf := func(c query.Col) relation.Distance {
		s := db.MustRelation(q.Atoms[aliasIdx[c.Rel]].Rel).Schema
		return s.Attrs[s.MustIndex(c.Attr)].Dist
	}

	// Env of qualified columns across joined atoms.
	type envT struct {
		cols []query.Col
		pos  map[query.Col]int
	}
	env := envT{pos: map[query.Col]int{}}
	var rows []relation.Tuple
	var weights []int

	constPreds := make(map[string][]query.Pred)
	var joinPreds []query.Pred
	for _, p := range q.Preds {
		if p.Join {
			joinPreds = append(joinPreds, p)
		} else {
			constPreds[p.Left.Rel] = append(constPreds[p.Left.Rel], p)
		}
	}
	applied := make([]bool, len(joinPreds))
	processed := map[string]bool{}

	for ai, atom := range q.Atoms {
		alias := atom.Name()
		fa := atoms[ai]

		// Relaxed constant selection on this atom's rows.
		var atomRows []relation.Tuple
		var atomWs []int
		for ri, t := range fa.Rel.Tuples {
			ok := true
			for _, pd := range constPreds[alias] {
				ci, has := fa.Rel.Schema.Index(pd.Left.Attr)
				if !has {
					return nil, fmt.Errorf("plan: predicate column %s not fetched", pd.Left)
				}
				r := resOf(pd.Left)
				if math.IsInf(r, 1) {
					continue // unboundedly approximate: cannot filter
				}
				if !pd.RelaxedHolds(distOf(pd.Left), t[ci], relation.Null(), r) {
					ok = false
					break
				}
			}
			if ok {
				atomRows = append(atomRows, t)
				atomWs = append(atomWs, fa.Weights[ri])
			}
		}

		atomCols := make([]query.Col, fa.Rel.Schema.Arity())
		for i, a := range fa.Rel.Schema.Attrs {
			atomCols[i] = query.C(alias, a.Name)
		}

		if ai == 0 {
			rows, weights = atomRows, atomWs
			for i, c := range atomCols {
				env.pos[c] = i
				env.cols = append(env.cols, c)
			}
			processed[alias] = true
			continue
		}

		// Connecting join predicates. A tolerance of +inf means the
		// attribute was fetched with unbounded resolution: relaxation
		// cannot meaningfully widen such a join (the accuracy bound is
		// already 0), so it is enforced exactly — which also keeps the
		// join from degenerating into a cross product.
		var exactEq, relaxed []int
		for pi, pd := range joinPreds {
			if applied[pi] {
				continue
			}
			lNew, rNew := pd.Left.Rel == alias, pd.Right.Rel == alias
			lOld, rOld := processed[pd.Left.Rel], processed[pd.Right.Rel]
			if !((lNew && rOld) || (rNew && lOld) || (lNew && rNew)) {
				continue
			}
			tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
			if pd.Op == query.OpEq && (tol == 0 || math.IsInf(tol, 1)) && !(lNew && rNew) {
				exactEq = append(exactEq, pi)
			} else {
				relaxed = append(relaxed, pi)
			}
		}

		valOf := func(c query.Col, envRow, atomRow relation.Tuple) (relation.Value, error) {
			if c.Rel == alias {
				ci, ok := fa.Rel.Schema.Index(c.Attr)
				if !ok {
					return relation.Null(), fmt.Errorf("plan: join column %s not fetched", c)
				}
				return atomRow[ci], nil
			}
			pi, ok := env.pos[c]
			if !ok {
				return relation.Null(), fmt.Errorf("plan: join column %s not in scope", c)
			}
			return envRow[pi], nil
		}

		var joined []relation.Tuple
		var joinedW []int
		emit := func(envRow relation.Tuple, ew int, atomRow relation.Tuple, aw int) error {
			for _, pi := range relaxed {
				pd := joinPreds[pi]
				lv, err := valOf(pd.Left, envRow, atomRow)
				if err != nil {
					return err
				}
				rv, err := valOf(pd.Right, envRow, atomRow)
				if err != nil {
					return err
				}
				tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
				if math.IsInf(tol, 1) {
					// Unbounded resolution: enforce exactly (see above).
					if !pd.Holds(lv, rv) {
						return nil
					}
					continue
				}
				if !pd.RelaxedHolds(distOf(pd.Left), lv, rv, tol) {
					return nil
				}
			}
			nt := make(relation.Tuple, 0, len(envRow)+len(atomRow))
			nt = append(append(nt, envRow...), atomRow...)
			joined = append(joined, nt)
			joinedW = append(joinedW, ew*aw)
			return nil
		}

		if len(exactEq) > 0 {
			atomKeyIdx := make([]int, len(exactEq))
			envKeyIdx := make([]int, len(exactEq))
			for i, pi := range exactEq {
				pd := joinPreds[pi]
				ac, ec := pd.Left, pd.Right
				if ec.Rel == alias {
					ac, ec = ec, ac
				}
				ci, _ := fa.Rel.Schema.Index(ac.Attr)
				atomKeyIdx[i] = ci
				envKeyIdx[i] = env.pos[ec]
			}
			ht := map[string][]int{}
			for ri, t := range atomRows {
				ht[t.Project(atomKeyIdx).Key()] = append(ht[t.Project(atomKeyIdx).Key()], ri)
			}
			for ei, et := range rows {
				for _, ri := range ht[et.Project(envKeyIdx).Key()] {
					if err := emit(et, weights[ei], atomRows[ri], atomWs[ri]); err != nil {
						return nil, err
					}
				}
			}
		} else {
			if len(rows)*len(atomRows) > query.MaxIntermediate {
				return nil, fmt.Errorf("plan: relaxed join of %d x %d rows exceeds limit", len(rows), len(atomRows))
			}
			for ei, et := range rows {
				for ri, at := range atomRows {
					if err := emit(et, weights[ei], at, atomWs[ri]); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, pi := range exactEq {
			applied[pi] = true
		}
		for _, pi := range relaxed {
			applied[pi] = true
		}
		rows, weights = joined, joinedW
		for _, c := range atomCols {
			env.pos[c] = len(env.cols)
			env.cols = append(env.cols, c)
		}
		processed[alias] = true
	}

	// Residual join predicates within the final environment.
	for pi, pd := range joinPreds {
		if applied[pi] {
			continue
		}
		tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
		li, lok := env.pos[pd.Left]
		ri, rok := env.pos[pd.Right]
		if !lok || !rok {
			return nil, fmt.Errorf("plan: join predicate %s references unfetched columns", pd)
		}
		var kept []relation.Tuple
		var keptW []int
		for i, t := range rows {
			ok := false
			if math.IsInf(tol, 1) {
				ok = pd.Holds(t[li], t[ri])
			} else {
				ok = pd.RelaxedHolds(distOf(pd.Left), t[li], t[ri], tol)
			}
			if ok {
				kept = append(kept, t)
				keptW = append(keptW, weights[i])
			}
		}
		rows, weights = kept, keptW
	}

	// Project.
	outCols, err := query.OutputCols(q, db)
	if err != nil {
		return nil, err
	}
	outIdx := make([]int, len(outCols))
	for i, c := range outCols {
		pos, ok := env.pos[c]
		if !ok {
			return nil, fmt.Errorf("plan: output column %s not fetched", c)
		}
		outIdx[i] = pos
	}
	res := &Result{Rel: relation.NewRelation(outSchema)}
	for i, t := range rows {
		res.Rel.Tuples = append(res.Rel.Tuples, t.Project(outIdx))
		res.Weights = append(res.Weights, weights[i])
	}
	return res, nil
}
