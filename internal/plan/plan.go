// Package plan executes bounded query plans (paper §2.2): canonical plans
// ξα = (ξF, ξE) where ξF is a sequence of fetch(X ∈ T, R, Y, ψ) operations
// over the indices of an access schema and ξE evaluates the (relaxed)
// relational operations of the query on the fetched data.
//
// The executor accounts every tuple returned by an index lookup against the
// budget B = α|D| and truncates fetching if the budget would be exceeded —
// a runtime backstop behind the planner's data-independent tariff estimate.
// Fetched rows carry count annotations (how many base tuples a sample
// represents), which §7's sum/count/avg aggregation consumes.
//
// Execution is allocation-light: per-plan layouts are precompiled once (see
// layout.go) and the hot loops run over flat int slices and hash-bucketed
// tuple maps instead of string-keyed maps. Budget-truncated executions can
// leave atoms with partially built schemas; evaluation falls back to the
// dynamic reference path for those, so semantics are identical.
package plan

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/access"
	"repro/internal/chase"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// Bounded is an α-bounded plan: a chased fetch-plan skeleton plus a level
// assignment for its template steps (chAT's output) and the budget.
type Bounded struct {
	Chase  *chase.Result
	Ks     []int
	Budget int

	// The execution layout is precompiled lazily on first execution and
	// shared by all (concurrent) executions; it depends only on Chase,
	// never on Ks or Budget.
	layoutOnce sync.Once
	layout     *planLayout
	layoutErr  error
}

// NewBounded wraps a chase result with its initial level assignment.
func NewBounded(c *chase.Result, budget int) *Bounded {
	return &Bounded{Chase: c, Ks: c.Levels(), Budget: budget}
}

// ResolutionOf exposes the fetch resolution of (atom, attr) under the
// plan's current level assignment.
func (p *Bounded) ResolutionOf(atom int, attr string) float64 {
	return p.Chase.ResolutionOf(atom, attr, p.Ks)
}

// Tariff estimates the plan's data access from schema metadata alone.
func (p *Bounded) Tariff() int { return p.Chase.Tariff(p.Ks) }

// Stats reports what a plan execution actually touched.
type Stats struct {
	// Accessed counts tuples returned by index lookups.
	Accessed int
	// Truncated reports whether fetching stopped early on budget
	// exhaustion.
	Truncated bool
}

// FetchedAtom is the data fetched for one atom of the SPC body: a relation
// over the fetched attributes (unqualified names) with per-row count
// annotations.
type FetchedAtom struct {
	Alias   string
	Rel     *relation.Relation
	Weights []int
}

// Result is an executed plan's output: the (bag) answers with per-row
// weights (products of sample counts along the join) and access statistics.
type Result struct {
	Rel     *relation.Relation
	Weights []int
	Stats   Stats
}

// ExecOpts is the per-call execution state of one plan run. It replaces the
// former package-level toggles (PartitionAwareFetch, MinParallelEmitRows):
// every knob travels with the call, so concurrent executions never share
// mutable globals. Build one with DefaultExecOpts and override fields.
type ExecOpts struct {
	// Budget is this run's access budget (tuples returned by index
	// lookups); the runtime backstop truncates fetching beyond it.
	Budget int
	// Workers bounds the fetch-side worker pool; < 2 keeps the strictly
	// lazy, sequential reference path.
	Workers int
	// PartitionAware enables the batched scatter-gather fetch across the
	// ladder's shards when Workers > 1. Answers are identical either way;
	// false exists for apples-to-apples measurement of the legacy lazy
	// serving path.
	PartitionAware bool
	// MinParallelEmitRows gates the chunked parallel row materialisation:
	// below this many existing rows the goroutine fan-out costs more than
	// the row assembly it spreads. Output is identical at any value.
	MinParallelEmitRows int
	// ColumnarScan routes the run through the columnar executor (see
	// colexec.go): fetched samples stay in the ladder's per-level columnar
	// blocks, predicates and hash-join keys are evaluated block-at-a-time
	// over flat typed columns, and rows are only materialised at the answer
	// boundary. Answers, Stats and truncation are byte-identical to the row
	// path (asserted by TestColumnarScanMatchesRowScan); false keeps the
	// row-at-a-time reference path.
	ColumnarScan bool
	// Fetcher, when non-nil, resolves every fetch step's batch through it
	// instead of the ladder's in-process scatter-gather — the cluster
	// routing seam. Setting it forces the prefetch path on every step (the
	// lazy per-X fallback would bypass the router), which is safe because
	// prefetch and lazy fetching are proven byte-identical; budget
	// accounting stays sequential in first-seen enumeration order over the
	// returned views, so answers do not depend on where a fetch was served.
	// A fetcher error aborts the step (typed, e.g. *cluster.PeerError) —
	// never a silently partial answer.
	Fetcher RemoteFetcher
}

// DefaultMinParallelEmitRows is the default chunked-emit gate of
// DefaultExecOpts.
const DefaultMinParallelEmitRows = 64

// DefaultExecOpts returns the executor defaults for one run: partition-aware
// fetching on, the standard parallel-emit gate, columnar scan on.
func DefaultExecOpts(budget, workers int) ExecOpts {
	return ExecOpts{
		Budget:              budget,
		Workers:             workers,
		PartitionAware:      true,
		MinParallelEmitRows: DefaultMinParallelEmitRows,
		ColumnarScan:        true,
	}
}

// cancelStride bounds how many enumeration visits (or emitted row prefixes)
// the hot loops process between two context checks: cancellation is noticed
// within one stride of work at every level of the executor.
const cancelStride = 64

// Execute runs the full plan: fetch then relaxed evaluation, accounting
// accesses against p.Budget.
//
// Deprecated: use ExecuteOpts, which takes a context and per-call options.
func Execute(p *Bounded, db *relation.Database) (*Result, error) {
	return ExecuteOpts(context.Background(), p, db, DefaultExecOpts(p.Budget, 1))
}

// ExecuteWithBudget runs the full plan against an explicit access budget,
// leaving the plan itself untouched.
//
// Deprecated: use ExecuteOpts, which takes a context and per-call options.
func ExecuteWithBudget(p *Bounded, db *relation.Database, budget int) (*Result, error) {
	return ExecuteOpts(context.Background(), p, db, DefaultExecOpts(budget, 1))
}

// ExecuteWithBudgetWorkers is ExecuteWithBudget with fetch-side parallelism.
//
// Deprecated: use ExecuteOpts, which takes a context and per-call options.
func ExecuteWithBudgetWorkers(p *Bounded, db *relation.Database, budget, workers int) (*Result, error) {
	return ExecuteOpts(context.Background(), p, db, DefaultExecOpts(budget, workers))
}

// ExecuteOpts runs the full plan — fetch then relaxed evaluation — under
// per-call options, leaving the plan itself untouched. Plans are immutable
// once generated, so the same *Bounded may be executed concurrently from
// many goroutines (each call builds its own fetch state); the budget is
// per-call because callers partition one global α|D| budget across the
// leaves of a larger plan.
//
// With o.Workers > 1 and o.PartitionAware, each fetch step first resolves
// its distinct X-values with a scatter-gather batch across the ladder's
// shards and then materialises the fetched rows over a bounded worker pool.
// Budget accounting stays sequential in first-seen X order, so answers,
// Stats and truncation points are byte-identical to the Workers = 1
// reference path (asserted by TestShardCountInvariance and the golden
// digest suite).
//
// Cancellation is cooperative: ctx is checked between fetch steps, at the
// shard fan-out of the partition-aware path, every few distinct X-values on
// the lazy path, and per chunk during parallel row emit. A cancelled call
// returns ctx.Err() promptly instead of burning the rest of its budget.
func ExecuteOpts(ctx context.Context, p *Bounded, db *relation.Database, o ExecOpts) (*Result, error) {
	if o.MinParallelEmitRows <= 0 {
		o.MinParallelEmitRows = DefaultMinParallelEmitRows
	}
	if !o.PartitionAware || o.Workers < 1 {
		o.Workers = 1
	}
	if o.ColumnarScan {
		return executeColumnar(ctx, p, db, o)
	}
	atoms, stats, err := executeFetch(ctx, p, db, o)
	if err != nil {
		return nil, err
	}
	res, err := evaluateFetched(ctx, p, db, atoms)
	if err != nil {
		return nil, err
	}
	res.Stats = *stats
	return res, nil
}

// ExecuteFetch runs ξF with the plan's own budget.
func ExecuteFetch(p *Bounded, db *relation.Database) ([]*FetchedAtom, *Stats, error) {
	return executeFetch(context.Background(), p, db, DefaultExecOpts(p.Budget, 1))
}

// executeFetch runs ξF: it applies the chase steps in order against the
// access-schema indices, materialising one relation per atom.
func executeFetch(ctx context.Context, p *Bounded, db *relation.Database, o ExecOpts) ([]*FetchedAtom, *Stats, error) {
	lay, err := p.layoutFor(db)
	if err != nil {
		return nil, nil, err
	}
	q := p.Chase.Query
	stats := &Stats{}
	atoms := make([]*FetchedAtom, len(q.Atoms))

	for si := range p.Chase.Steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		s := &p.Chase.Steps[si]
		k := s.K
		if !s.Pinned && p.Ks != nil {
			k = p.Ks[si]
		}
		if err := applyStep(ctx, p, atoms, &lay.steps[si], s, si, k, o, stats); err != nil {
			return nil, nil, err
		}
		if stats.Truncated {
			break
		}
	}
	// Atoms with no fetched data (possible after truncation) become empty
	// relations over their used attributes so evaluation degrades cleanly.
	for ai := range atoms {
		if atoms[ai] == nil {
			atoms[ai] = &FetchedAtom{
				Alias: q.Atoms[ai].Name(),
				Rel:   relation.NewRelation(lay.emptySchema[ai]),
			}
		}
	}
	return atoms, stats, nil
}

// assembleX writes the step's ladder-order X tuple for the current
// enumeration state into dst (len(sl.route)). fill holds the current
// external valuation by X position.
func assembleX(sl *stepLayout, fill []relation.Value, prefix, dst relation.Tuple) {
	for xi, r := range sl.route {
		switch r {
		case xOwn:
			dst[xi] = prefix[sl.ownCol[xi]]
		case xConst:
			dst[xi] = sl.consts[xi]
		default:
			dst[xi] = fill[xi]
		}
	}
}

// forEachEnum enumerates a step's fetch enumeration — existing rows (or one
// virtual row when rows is nil and virtual is set) × the cross product of
// external valuations — in deterministic order, calling visit once per
// combination with the current prefix row and weight. fill (len(sl.route))
// is updated in place with the current external valuation before each visit.
// A visit returning false aborts the enumeration (cooperative cancellation).
func forEachEnum(rows []relation.Tuple, weights []int, virtual bool, extVals [][]relation.Tuple, sl *stepLayout, fill []relation.Value, visit func(prefix relation.Tuple, w int) bool) {
	var walkExt func(gi int, prefix relation.Tuple, w int) bool
	walkExt = func(gi int, prefix relation.Tuple, w int) bool {
		if gi == len(sl.extGroups) {
			return visit(prefix, w)
		}
		for _, vt := range extVals[gi] {
			for i, xi := range sl.extGroups[gi] {
				fill[xi] = vt[i]
			}
			if !walkExt(gi+1, prefix, w) {
				return false
			}
		}
		return true
	}
	if virtual {
		walkExt(0, nil, 1)
		return
	}
	for ri, t := range rows {
		if !walkExt(0, t, weights[ri]) {
			return
		}
	}
}

// buildRow assembles one output row: the prefix columns, the new X columns
// and the sample's Y columns, per the step layout's output positions.
func buildRow(sl *stepLayout, arity int, prefix, xt, y relation.Tuple) relation.Tuple {
	row := make(relation.Tuple, arity)
	copy(row, prefix)
	for xi, pos := range sl.outX {
		if pos >= 0 {
			row[pos] = xt[xi]
		}
	}
	for yi, pos := range sl.outY {
		if pos >= 0 {
			row[pos] = y[yi]
		}
	}
	return row
}

// applyStep runs one fetch operation over its precompiled layout, extending
// (or creating) the atom's fetched relation. The hot loops only index flat
// slices; the single map in sight is the hash-bucketed fetch cache.
//
// With o.Workers > 1 the step takes the partition-aware path: the distinct
// X-values of the enumeration are collected first (in the same first-seen
// order the lazy path discovers them), resolved with one scatter-gather
// batch across the ladder's shards, budget-accounted sequentially in that
// order, and the row materialisation then fans out over contiguous row
// chunks whose concatenation reproduces the sequential output exactly.
//
// ctx is consulted every cancelStride enumeration visits (lazy path), at
// the shard fan-out (prefetch) and per chunk of the parallel emit.
func applyStep(ctx context.Context, p *Bounded, atoms []*FetchedAtom, sl *stepLayout, s *chase.Step, si, k int, o ExecOpts, stats *Stats) error {
	ai := sl.atom
	cur := atoms[ai]
	budget, workers := o.Budget, o.Workers

	// One span per fetch step (a handful per leaf, never per row); attrs
	// are filled on the way out so truncation and the access delta are the
	// step's own.
	fs := obs.SpanFrom(ctx).Child("fetch_step")
	if fs != nil {
		fs.SetInt("step", int64(si))
		fs.SetInt("level", int64(k))
		ctx = obs.ContextWithSpan(ctx, fs)
		before := stats.Accessed
		defer func() {
			fs.SetInt("accessed", int64(stats.Accessed-before))
			fs.SetBool("truncated", stats.Truncated)
			fs.End()
		}()
	}

	// Materialise distinct joint valuations per external group.
	extVals := make([][]relation.Tuple, len(sl.extGroups))
	for gi := range sl.extGroups {
		fa := atoms[sl.extSrcAtom[gi]]
		if fa == nil {
			return fmt.Errorf("plan: step %d reads atom %d before it was fetched", si, sl.extSrcAtom[gi])
		}
		idx := sl.extSrcCols[gi]
		seen := relation.NewTupleSet(len(fa.Rel.Tuples))
		for _, t := range fa.Rel.Tuples {
			pt := t.Project(idx)
			if seen.Add(pt) {
				extVals[gi] = append(extVals[gi], pt)
			}
		}
	}

	out := &FetchedAtom{Alias: atomAlias(p, ai), Rel: relation.NewRelation(sl.schema)}
	arity := sl.schema.Arity()

	// Fetch cache: one budget-accounted sample view per distinct X-value.
	// Views are shared read-only slices of the ladder's materialised levels.
	cache := relation.NewTupleMap[[]access.Sample](0)

	// The scatter-gather path costs an extra enumeration pass (collecting
	// the distinct X-values), so take it only when the enumeration is big
	// enough for the fan-out to pay for it; small steps keep the
	// single-pass lazy fetch. Results are identical either way.
	enumCount := 1
	if cur != nil {
		enumCount = len(cur.Rel.Tuples)
	}
	for gi := range extVals {
		if enumCount >= o.MinParallelEmitRows {
			break // saturated: the gate already passes
		}
		enumCount *= len(extVals[gi])
	}
	prefetched := o.Fetcher != nil || (workers > 1 && enumCount >= o.MinParallelEmitRows)
	fs.SetBool("prefetch", prefetched)
	if prefetched {
		if err := prefetchStep(ctx, cur, extVals, sl, s, k, budget, stats, cache, workers, o.Fetcher); err != nil {
			return err
		}
	}

	// fetch resolves one X-value with budget accounting; after a prefetch
	// every enumerated X is already cached, so this never mutates state.
	// Callers probe with a reused scratch tuple, and the cache retains keys
	// by reference, so inserts store a private copy.
	fetch := func(xt relation.Tuple) []access.Sample {
		if got, ok := cache.Get(xt); ok {
			return got
		}
		key := append(relation.Tuple(nil), xt...)
		if stats.Truncated {
			cache.Put(key, nil)
			return nil
		}
		samples := s.Ladder.Fetch(xt, k)
		if stats.Accessed+len(samples) > budget {
			// Budget backstop: take what fits, then stop fetching.
			room := budget - stats.Accessed
			if room < 0 {
				room = 0
			}
			samples = samples[:room]
			stats.Truncated = true
		}
		stats.Accessed += len(samples)
		cache.Put(key, samples)
		return samples
	}

	if prefetched && cur != nil && len(cur.Rel.Tuples) >= o.MinParallelEmitRows {
		// Parallel row materialisation: contiguous chunks of the existing
		// rows, each worker reading the prefilled cache only and writing its
		// own output slices; chunk concatenation preserves row order. Every
		// worker re-checks ctx each cancelStride prefixes, so a cancelled
		// call abandons the emit within one stride per chunk.
		rows, weights := cur.Rel.Tuples, cur.Weights
		n := len(rows)
		nw := workers
		if nw > n {
			nw = n
		}
		type part struct {
			rows []relation.Tuple
			ws   []int
		}
		parts := make([]part, nw)
		partErrs := make([]error, nw)
		var wg sync.WaitGroup
		for pi := 0; pi < nw; pi++ {
			lo, hi := pi*n/nw, (pi+1)*n/nw
			wg.Add(1)
			go func(pi, lo, hi int) {
				defer wg.Done()
				// A panic in an emit worker is contained to its error slot
				// instead of crashing the process out from under the other
				// workers (and the whole server).
				defer guard.Recover("parallel row emit", &partErrs[pi])
				fill := make([]relation.Value, len(sl.route))
				xt := make(relation.Tuple, len(sl.route))
				var pr []relation.Tuple
				var pw []int
				visited := 0
				forEachEnum(rows[lo:hi], weights[lo:hi], false, extVals, sl, fill, func(prefix relation.Tuple, w int) bool {
					if visited++; visited%cancelStride == 0 && ctx.Err() != nil {
						return false
					}
					assembleX(sl, fill, prefix, xt)
					got, _ := cache.Get(xt) // read-only: prefetch covered every X
					for _, smp := range got {
						pr = append(pr, buildRow(sl, arity, prefix, xt, smp.Y))
						pw = append(pw, w*smp.Count)
					}
					return true
				})
				parts[pi] = part{pr, pw}
			}(pi, lo, hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, err := range partErrs {
			if err != nil {
				return err
			}
		}
		for _, pt := range parts {
			out.Rel.Tuples = append(out.Rel.Tuples, pt.rows...)
			out.Weights = append(out.Weights, pt.ws...)
		}
	} else {
		fill := make([]relation.Value, len(sl.route))
		xt := make(relation.Tuple, len(sl.route))
		visited := 0
		visit := func(prefix relation.Tuple, w int) bool {
			if visited++; visited%cancelStride == 0 && ctx.Err() != nil {
				return false
			}
			assembleX(sl, fill, prefix, xt)
			for _, smp := range fetch(xt) {
				out.Rel.Tuples = append(out.Rel.Tuples, buildRow(sl, arity, prefix, xt, smp.Y))
				out.Weights = append(out.Weights, w*smp.Count)
			}
			return true
		}
		if cur == nil {
			forEachEnum(nil, nil, true, extVals, sl, fill, visit)
		} else {
			forEachEnum(cur.Rel.Tuples, cur.Weights, false, extVals, sl, fill, visit)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	atoms[ai] = out
	return nil
}

// prefetchStep is the scatter-gather half of the partition-aware fetch: it
// collects the step's distinct X-values in first-seen enumeration order,
// resolves them with one batched fan-out across the ladder's shards, and
// accounts them against the budget sequentially in exactly that order —
// the same tuples the lazy path would charge, truncated at the same point.
// ctx is checked during collection (every cancelStride visits) and again
// immediately before the shard fan-out. A non-nil fetcher replaces the
// in-process batch with the routed one — same view contract, so the
// sequential accounting below is oblivious to where a fetch was served.
func prefetchStep(ctx context.Context, cur *FetchedAtom, extVals [][]relation.Tuple, sl *stepLayout, s *chase.Step, k, budget int, stats *Stats, cache *relation.TupleMap[[]access.Sample], workers int, fetcher RemoteFetcher) error {
	fill := make([]relation.Value, len(sl.route))
	scratch := make(relation.Tuple, len(sl.route))
	seen := relation.NewTupleSet(0)
	var xs []relation.Tuple
	visited := 0
	collect := func(prefix relation.Tuple, w int) bool {
		if visited++; visited%cancelStride == 0 && ctx.Err() != nil {
			return false
		}
		assembleX(sl, fill, prefix, scratch)
		if seen.Has(scratch) {
			return true
		}
		xt := append(relation.Tuple(nil), scratch...)
		seen.Add(xt)
		xs = append(xs, xt)
		return true
	}
	if cur == nil {
		forEachEnum(nil, nil, true, extVals, sl, fill, collect)
	} else {
		forEachEnum(cur.Rel.Tuples, cur.Weights, false, extVals, sl, fill, collect)
	}
	// Shard fan-out boundary: the last check before the batched fetch does
	// real index work across shards.
	if err := ctx.Err(); err != nil {
		return err
	}

	var raw [][]access.Sample
	if fetcher != nil {
		// The routed path opens its own per-peer spans off the ctx span
		// (see internal/cluster); nothing to account locally.
		var err error
		raw, err = fetcher.FetchBatch(ctx, s.Ladder, xs, k)
		if err != nil {
			return err
		}
	} else {
		done := shardSpans(ctx, s.Ladder, xs)
		raw = s.Ladder.FetchBatch(xs, k, workers)
		done(func(i int) int { return len(raw[i]) })
	}

	for i, xt := range xs {
		samples := raw[i]
		if stats.Truncated {
			cache.Put(xt, nil)
			continue
		}
		if stats.Accessed+len(samples) > budget {
			room := budget - stats.Accessed
			if room < 0 {
				room = 0
			}
			samples = samples[:room]
			stats.Truncated = true
		}
		stats.Accessed += len(samples)
		cache.Put(xt, samples)
	}
	return nil
}

func atomAlias(p *Bounded, ai int) string { return p.Chase.Query.Atoms[ai].Name() }

// EvaluateFetched runs ξE: the query's relational operations over the
// fetched atoms, with selection and join conditions relaxed by the fetch
// resolutions of the attributes involved (paper §5, "evaluation plan").
//
// When every atom carries its fully built (precompiled) schema, the fast
// evaluator runs over the plan's precompiled layout; budget-truncated
// fetches with partially built atoms take the dynamic reference path, which
// resolves columns at runtime exactly as the original executor did.
func EvaluateFetched(p *Bounded, db *relation.Database, atoms []*FetchedAtom) (*Result, error) {
	return evaluateFetched(context.Background(), p, db, atoms)
}

// evaluateFetched is EvaluateFetched with cooperative cancellation: ctx is
// checked at every atom-join boundary of either evaluator.
func evaluateFetched(ctx context.Context, p *Bounded, db *relation.Database, atoms []*FetchedAtom) (*Result, error) {
	if lay, err := p.layoutFor(db); err == nil && lay.eval != nil && layoutMatches(lay, atoms) {
		return evaluateFast(ctx, p, lay, atoms)
	}
	return evaluateDynamic(ctx, p, db, atoms)
}

// layoutMatches reports whether every fetched atom carries the precompiled
// final schema (pointer identity: executeFetch builds atoms from the
// layout's schema objects, so any truncation-induced deviation differs).
func layoutMatches(lay *planLayout, atoms []*FetchedAtom) bool {
	if len(atoms) != len(lay.finalSchema) {
		return false
	}
	for ai, fa := range atoms {
		if fa == nil || fa.Rel.Schema != lay.finalSchema[ai] {
			return false
		}
	}
	return true
}

// evaluateFast is the precompiled evaluation path.
func evaluateFast(ctx context.Context, p *Bounded, lay *planLayout, atoms []*FetchedAtom) (*Result, error) {
	q := p.Chase.Query
	ev := lay.eval
	resOf := func(ai int, attr string) float64 {
		return p.Chase.ResolutionOf(ai, attr, p.Ks)
	}

	var rows []relation.Tuple
	var weights []int

	for ai := range q.Atoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fa := atoms[ai]

		// Relaxed constant selection: tolerances are fixed per call, so
		// hoist them out of the row loop. Unboundedly approximate columns
		// (+inf resolution) cannot be filtered at all.
		type activeSel struct {
			col  int
			tol  float64
			dist relation.Distance
			pred query.Pred
		}
		var active []activeSel
		for _, cs := range ev.constSels[ai] {
			r := resOf(ai, cs.pred.Left.Attr)
			if math.IsInf(r, 1) {
				continue
			}
			active = append(active, activeSel{col: cs.col, tol: r, dist: cs.dist, pred: cs.pred})
		}
		var atomRows []relation.Tuple
		var atomWs []int
		for ri, t := range fa.Rel.Tuples {
			ok := true
			for _, cs := range active {
				if !cs.pred.RelaxedHolds(cs.dist, t[cs.col], relation.Null(), cs.tol) {
					ok = false
					break
				}
			}
			if ok {
				atomRows = append(atomRows, t)
				atomWs = append(atomWs, fa.Weights[ri])
			}
		}

		if ai == 0 {
			rows, weights = atomRows, atomWs
			continue
		}

		// Classify connecting join predicates. A tolerance of +inf means
		// the attribute was fetched with unbounded resolution: relaxation
		// cannot meaningfully widen such a join (the accuracy bound is
		// already 0), so it is enforced exactly — which also keeps the
		// join from degenerating into a cross product.
		type activeJoin struct {
			j     *joinSel
			tol   float64
			exact bool // enforce pred.Holds (unbounded resolution)
		}
		var exactEq []*joinSel
		var relaxed []activeJoin
		for _, ji := range ev.connecting[ai] {
			j := &ev.joins[ji]
			tol := (resOf(j.lAtom, j.pred.Left.Attr) + resOf(j.rAtom, j.pred.Right.Attr)) / 2
			bothNew := j.lAtom == ai && j.rAtom == ai
			if j.pred.Op == query.OpEq && (tol == 0 || math.IsInf(tol, 1)) && !bothNew {
				exactEq = append(exactEq, j)
			} else {
				relaxed = append(relaxed, activeJoin{j: j, tol: tol, exact: math.IsInf(tol, 1)})
			}
		}

		valOf := func(side int, j *joinSel, envRow, atomRow relation.Tuple) relation.Value {
			a, c := j.lAtom, j.lCol
			if side == 1 {
				a, c = j.rAtom, j.rCol
			}
			if a == ai {
				return atomRow[c]
			}
			return envRow[ev.envOffset[a]+c]
		}

		var joined []relation.Tuple
		var joinedW []int
		emit := func(envRow relation.Tuple, ew int, atomRow relation.Tuple, aw int) {
			for _, aj := range relaxed {
				lv := valOf(0, aj.j, envRow, atomRow)
				rv := valOf(1, aj.j, envRow, atomRow)
				if aj.exact {
					if !aj.j.pred.Holds(lv, rv) {
						return
					}
					continue
				}
				if !aj.j.pred.RelaxedHolds(aj.j.lDist, lv, rv, aj.tol) {
					return
				}
			}
			nt := make(relation.Tuple, 0, len(envRow)+len(atomRow))
			nt = append(append(nt, envRow...), atomRow...)
			joined = append(joined, nt)
			joinedW = append(joinedW, ew*aw)
		}

		if len(exactEq) > 0 {
			// Hash join on the exact-equality keys: build side projects
			// each key once; the probe side reuses one scratch tuple, so
			// probing allocates nothing.
			atomKeyIdx := make([]int, len(exactEq))
			envKeyIdx := make([]int, len(exactEq))
			for i, j := range exactEq {
				if j.lAtom == ai {
					atomKeyIdx[i] = j.lCol
					envKeyIdx[i] = ev.envOffset[j.rAtom] + j.rCol
				} else {
					atomKeyIdx[i] = j.rCol
					envKeyIdx[i] = ev.envOffset[j.lAtom] + j.lCol
				}
			}
			ht := relation.NewTupleMap[[]int](len(atomRows))
			for ri, t := range atomRows {
				lst := ht.GetOrInsert(t.Project(atomKeyIdx))
				*lst = append(*lst, ri)
			}
			probe := make(relation.Tuple, len(envKeyIdx))
			for ei, et := range rows {
				for i, ci := range envKeyIdx {
					probe[i] = et[ci]
				}
				if lst, ok := ht.Get(probe); ok {
					for _, ri := range lst {
						emit(et, weights[ei], atomRows[ri], atomWs[ri])
					}
				}
			}
		} else {
			if len(rows)*len(atomRows) > query.MaxIntermediate {
				return nil, fmt.Errorf("plan: relaxed join of %d x %d rows exceeds limit", len(rows), len(atomRows))
			}
			for ei, et := range rows {
				for ri, at := range atomRows {
					emit(et, weights[ei], at, atomWs[ri])
				}
			}
		}
		rows, weights = joined, joinedW
	}

	// Residual join predicates within the final environment.
	for _, ji := range ev.residual {
		j := &ev.joins[ji]
		tol := (resOf(j.lAtom, j.pred.Left.Attr) + resOf(j.rAtom, j.pred.Right.Attr)) / 2
		li := ev.envOffset[j.lAtom] + j.lCol
		ri := ev.envOffset[j.rAtom] + j.rCol
		var kept []relation.Tuple
		var keptW []int
		for i, t := range rows {
			ok := false
			if math.IsInf(tol, 1) {
				ok = j.pred.Holds(t[li], t[ri])
			} else {
				ok = j.pred.RelaxedHolds(j.lDist, t[li], t[ri], tol)
			}
			if ok {
				kept = append(kept, t)
				keptW = append(keptW, weights[i])
			}
		}
		rows, weights = kept, keptW
	}

	// Project.
	res := &Result{Rel: relation.NewRelation(ev.outSchema)}
	for i, t := range rows {
		res.Rel.Tuples = append(res.Rel.Tuples, t.Project(ev.outIdx))
		res.Weights = append(res.Weights, weights[i])
	}
	return res, nil
}

// evaluateDynamic is the reference evaluation path: columns are resolved at
// runtime against whatever schemas the (possibly truncated) fetch produced.
// It is retained verbatim from the pre-layout executor so truncated
// executions behave exactly as before.
func evaluateDynamic(ctx context.Context, p *Bounded, db *relation.Database, atoms []*FetchedAtom) (*Result, error) {
	q := p.Chase.Query
	outSchema, err := query.OutputSchema(q, db)
	if err != nil {
		return nil, err
	}
	aliasIdx := make(map[string]int, len(q.Atoms))
	for i, a := range q.Atoms {
		aliasIdx[a.Name()] = i
	}
	resOf := func(c query.Col) float64 {
		return p.Chase.ResolutionOf(aliasIdx[c.Rel], c.Attr, p.Ks)
	}
	distOf := func(c query.Col) relation.Distance {
		s := db.MustRelation(q.Atoms[aliasIdx[c.Rel]].Rel).Schema
		return s.Attrs[s.MustIndex(c.Attr)].Dist
	}

	// Env of qualified columns across joined atoms.
	type envT struct {
		cols []query.Col
		pos  map[query.Col]int
	}
	env := envT{pos: map[query.Col]int{}}
	var rows []relation.Tuple
	var weights []int

	constPreds := make(map[string][]query.Pred)
	var joinPreds []query.Pred
	for _, p := range q.Preds {
		if p.Join {
			joinPreds = append(joinPreds, p)
		} else {
			constPreds[p.Left.Rel] = append(constPreds[p.Left.Rel], p)
		}
	}
	applied := make([]bool, len(joinPreds))
	processed := map[string]bool{}

	for ai, atom := range q.Atoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		alias := atom.Name()
		fa := atoms[ai]

		// Relaxed constant selection on this atom's rows.
		var atomRows []relation.Tuple
		var atomWs []int
		for ri, t := range fa.Rel.Tuples {
			ok := true
			for _, pd := range constPreds[alias] {
				ci, has := fa.Rel.Schema.Index(pd.Left.Attr)
				if !has {
					return nil, fmt.Errorf("plan: predicate column %s not fetched", pd.Left)
				}
				r := resOf(pd.Left)
				if math.IsInf(r, 1) {
					continue // unboundedly approximate: cannot filter
				}
				if !pd.RelaxedHolds(distOf(pd.Left), t[ci], relation.Null(), r) {
					ok = false
					break
				}
			}
			if ok {
				atomRows = append(atomRows, t)
				atomWs = append(atomWs, fa.Weights[ri])
			}
		}

		atomCols := make([]query.Col, fa.Rel.Schema.Arity())
		for i, a := range fa.Rel.Schema.Attrs {
			atomCols[i] = query.C(alias, a.Name)
		}

		if ai == 0 {
			rows, weights = atomRows, atomWs
			for i, c := range atomCols {
				env.pos[c] = i
				env.cols = append(env.cols, c)
			}
			processed[alias] = true
			continue
		}

		// Connecting join predicates. A tolerance of +inf means the
		// attribute was fetched with unbounded resolution: relaxation
		// cannot meaningfully widen such a join (the accuracy bound is
		// already 0), so it is enforced exactly — which also keeps the
		// join from degenerating into a cross product.
		var exactEq, relaxed []int
		for pi, pd := range joinPreds {
			if applied[pi] {
				continue
			}
			lNew, rNew := pd.Left.Rel == alias, pd.Right.Rel == alias
			lOld, rOld := processed[pd.Left.Rel], processed[pd.Right.Rel]
			if !((lNew && rOld) || (rNew && lOld) || (lNew && rNew)) {
				continue
			}
			tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
			if pd.Op == query.OpEq && (tol == 0 || math.IsInf(tol, 1)) && !(lNew && rNew) {
				exactEq = append(exactEq, pi)
			} else {
				relaxed = append(relaxed, pi)
			}
		}

		valOf := func(c query.Col, envRow, atomRow relation.Tuple) (relation.Value, error) {
			if c.Rel == alias {
				ci, ok := fa.Rel.Schema.Index(c.Attr)
				if !ok {
					return relation.Null(), fmt.Errorf("plan: join column %s not fetched", c)
				}
				return atomRow[ci], nil
			}
			pi, ok := env.pos[c]
			if !ok {
				return relation.Null(), fmt.Errorf("plan: join column %s not in scope", c)
			}
			return envRow[pi], nil
		}

		var joined []relation.Tuple
		var joinedW []int
		emit := func(envRow relation.Tuple, ew int, atomRow relation.Tuple, aw int) error {
			for _, pi := range relaxed {
				pd := joinPreds[pi]
				lv, err := valOf(pd.Left, envRow, atomRow)
				if err != nil {
					return err
				}
				rv, err := valOf(pd.Right, envRow, atomRow)
				if err != nil {
					return err
				}
				tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
				if math.IsInf(tol, 1) {
					// Unbounded resolution: enforce exactly (see above).
					if !pd.Holds(lv, rv) {
						return nil
					}
					continue
				}
				if !pd.RelaxedHolds(distOf(pd.Left), lv, rv, tol) {
					return nil
				}
			}
			nt := make(relation.Tuple, 0, len(envRow)+len(atomRow))
			nt = append(append(nt, envRow...), atomRow...)
			joined = append(joined, nt)
			joinedW = append(joinedW, ew*aw)
			return nil
		}

		if len(exactEq) > 0 {
			atomKeyIdx := make([]int, len(exactEq))
			envKeyIdx := make([]int, len(exactEq))
			for i, pi := range exactEq {
				pd := joinPreds[pi]
				ac, ec := pd.Left, pd.Right
				if ec.Rel == alias {
					ac, ec = ec, ac
				}
				ci, _ := fa.Rel.Schema.Index(ac.Attr)
				atomKeyIdx[i] = ci
				envKeyIdx[i] = env.pos[ec]
			}
			ht := map[string][]int{}
			for ri, t := range atomRows {
				k := t.Project(atomKeyIdx).Key()
				ht[k] = append(ht[k], ri)
			}
			for ei, et := range rows {
				for _, ri := range ht[et.Project(envKeyIdx).Key()] {
					if err := emit(et, weights[ei], atomRows[ri], atomWs[ri]); err != nil {
						return nil, err
					}
				}
			}
		} else {
			if len(rows)*len(atomRows) > query.MaxIntermediate {
				return nil, fmt.Errorf("plan: relaxed join of %d x %d rows exceeds limit", len(rows), len(atomRows))
			}
			for ei, et := range rows {
				for ri, at := range atomRows {
					if err := emit(et, weights[ei], at, atomWs[ri]); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, pi := range exactEq {
			applied[pi] = true
		}
		for _, pi := range relaxed {
			applied[pi] = true
		}
		rows, weights = joined, joinedW
		for _, c := range atomCols {
			env.pos[c] = len(env.cols)
			env.cols = append(env.cols, c)
		}
		processed[alias] = true
	}

	// Residual join predicates within the final environment.
	for pi, pd := range joinPreds {
		if applied[pi] {
			continue
		}
		tol := (resOf(pd.Left) + resOf(pd.Right)) / 2
		li, lok := env.pos[pd.Left]
		ri, rok := env.pos[pd.Right]
		if !lok || !rok {
			return nil, fmt.Errorf("plan: join predicate %s references unfetched columns", pd)
		}
		var kept []relation.Tuple
		var keptW []int
		for i, t := range rows {
			ok := false
			if math.IsInf(tol, 1) {
				ok = pd.Holds(t[li], t[ri])
			} else {
				ok = pd.RelaxedHolds(distOf(pd.Left), t[li], t[ri], tol)
			}
			if ok {
				kept = append(kept, t)
				keptW = append(keptW, weights[i])
			}
		}
		rows, weights = kept, keptW
	}

	// Project.
	outCols, err := query.OutputCols(q, db)
	if err != nil {
		return nil, err
	}
	outIdx := make([]int, len(outCols))
	for i, c := range outCols {
		pos, ok := env.pos[c]
		if !ok {
			return nil, fmt.Errorf("plan: output column %s not fetched", c)
		}
		outIdx[i] = pos
	}
	res := &Result{Rel: relation.NewRelation(outSchema)}
	for i, t := range rows {
		res.Rel.Tuples = append(res.Rel.Tuples, t.Project(outIdx))
		res.Weights = append(res.Weights, weights[i])
	}
	return res, nil
}
