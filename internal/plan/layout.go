package plan

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/query"
	"repro/internal/relation"
)

// This file precompiles the per-step and per-plan execution layouts.
//
// Plans are immutable after generation and executed many times (the plan
// cache serves repeated queries), yet the original executor re-derived on
// every execution — per step and partly per row — which X positions come
// from the current atom relation, which are constants or external columns,
// what the extended schema looks like, and where each fetched value lands
// (map[string]int and map[int]Value fills, Schema.Index calls, fmt.Sprintf
// group keys). All of that is a pure function of the chase result, so it is
// computed once per plan here and the executor runs over flat int slices.
//
// The schema evolution is simulated step by step: steps execute in order
// and each one only sees atoms built by earlier steps, so the simulated
// schemas match the runtime schemas exactly for every step that runs. The
// precompiled relation.Schema objects are reused by every execution (they
// are immutable), which also lets the evaluator detect with a pointer
// comparison whether a fetched atom was fully built (fast path) or left
// incomplete by budget truncation (dynamic fallback path).

// xRoute says where one X position of a step's ladder gets its value.
type xRoute uint8

const (
	// xOwn copies from the atom's existing row (prefix).
	xOwn xRoute = iota
	// xConst uses a constant from the chase step.
	xConst
	// xExt takes the current external-group valuation.
	xExt
)

// stepLayout is the precompiled form of one fetch step.
type stepLayout struct {
	atom   int
	route  []xRoute
	ownCol []int            // xOwn: column in the incoming prefix row
	consts []relation.Value // xConst: the constant

	// External groups in first-occurrence order of their source atoms:
	// X positions per group and the source columns they project.
	extGroups  [][]int
	extSrcAtom []int
	extSrcCols [][]int

	// Output: the extended schema and, per ladder X/Y position, the output
	// column it fills (-1 when the attribute already existed).
	schema      *relation.Schema
	prefixArity int
	outX        []int
	outY        []int
}

// planLayout is the precompiled execution layout of one Bounded plan.
type planLayout struct {
	steps []stepLayout
	// finalSchema[ai] is the fetched schema of atom ai after all its steps
	// (the empty-atom schema when it has none); emptySchema[ai] is the
	// schema emptyAtom uses for atoms the (possibly truncated) fetch never
	// built.
	finalSchema []*relation.Schema
	emptySchema []*relation.Schema
	// eval is the precompiled evaluation layout, or nil when static
	// precompilation is impossible (e.g. a predicate column is never
	// fetched) — the dynamic evaluator then preserves the original
	// behaviour, including its lazily-raised errors.
	eval *evalLayout
}

// constSel is one precompiled constant-selection predicate on an atom
// (constSels is indexed by atom).
type constSel struct {
	pred query.Pred
	col  int
	dist relation.Distance
}

// joinSel is one precompiled join predicate: both sides resolved to
// (atom, column) against the final fetched schemas.
type joinSel struct {
	pred         query.Pred
	lAtom, rAtom int
	lCol, rCol   int
	lDist        relation.Distance
	// joinAt is the atom whose arrival makes both sides available:
	// max(lAtom, rAtom). Predicates entirely within atom 0 are enforced on
	// the final environment (residual), matching the dynamic evaluator.
	joinAt int
}

type evalLayout struct {
	outSchema *relation.Schema
	// envOffset[ai] is where atom ai's columns start in the joined
	// environment row; envWidth is the final arity.
	envOffset []int
	envWidth  int
	// constSels[ai] are the constant selections on atom ai.
	constSels [][]constSel
	joins     []joinSel
	// connecting[ai] indexes into joins: predicates applied when atom ai
	// joins the environment (ai ≥ 1). residual predicates apply at the end.
	connecting [][]int
	residual   []int
	outIdx     []int
}

// layout returns the plan's precompiled layout, building it on first use.
// Layouts depend only on the chase result (never on Ks or the budget), so
// one layout serves every execution of the plan, concurrent ones included.
func (p *Bounded) layoutFor(db *relation.Database) (*planLayout, error) {
	p.layoutOnce.Do(func() {
		p.layout, p.layoutErr = buildLayout(p, db)
	})
	return p.layout, p.layoutErr
}

func buildLayout(p *Bounded, db *relation.Database) (*planLayout, error) {
	q := p.Chase.Query
	lay := &planLayout{
		finalSchema: make([]*relation.Schema, len(q.Atoms)),
		emptySchema: make([]*relation.Schema, len(q.Atoms)),
	}
	cur := make([]*relation.Schema, len(q.Atoms))
	for si := range p.Chase.Steps {
		s := &p.Chase.Steps[si]
		sl, err := buildStepLayout(q, db, cur, s, si)
		if err != nil {
			return nil, err
		}
		cur[s.AtomIdx] = sl.schema
		lay.steps = append(lay.steps, *sl)
	}
	for ai := range q.Atoms {
		es, err := emptySchemaFor(db, q, p.Chase, ai)
		if err != nil {
			return nil, err
		}
		lay.emptySchema[ai] = es
		if cur[ai] != nil {
			lay.finalSchema[ai] = cur[ai]
		} else {
			lay.finalSchema[ai] = es
		}
	}
	// Evaluation layout is best-effort: when a column the query needs is
	// not statically fetched, leave eval nil and let the dynamic evaluator
	// reproduce the original (possibly row-dependent) behaviour.
	lay.eval = buildEvalLayout(q, db, lay.finalSchema)
	return lay, nil
}

func emptySchemaFor(db *relation.Database, q *query.SPC, c *chase.Result, ai int) (*relation.Schema, error) {
	base := db.MustRelation(q.Atoms[ai].Rel)
	attrs := c.UsedAttrs(ai)
	as := make([]relation.Attribute, len(attrs))
	for i, a := range attrs {
		as[i] = base.Schema.Attrs[base.Schema.MustIndex(a)]
	}
	return relation.NewSchema(q.Atoms[ai].Name(), as...)
}

// buildStepLayout simulates one fetch step against the current schemas.
func buildStepLayout(q *query.SPC, db *relation.Database, cur []*relation.Schema, s *chase.Step, si int) (*stepLayout, error) {
	ai := s.AtomIdx
	base := db.MustRelation(q.Atoms[ai].Rel)
	curS := cur[ai]
	ladderX, ladderY := s.Ladder.X, s.Ladder.Y

	sl := &stepLayout{
		atom:   ai,
		route:  make([]xRoute, len(ladderX)),
		ownCol: make([]int, len(ladderX)),
		consts: make([]relation.Value, len(ladderX)),
	}
	groupOf := map[int]int{}
	for xi, attr := range ladderX {
		if curS != nil {
			if ci, ok := curS.Index(attr); ok {
				sl.route[xi] = xOwn
				sl.ownCol[xi] = ci
				continue
			}
		}
		src := s.X[xi]
		if src.IsConst {
			sl.route[xi] = xConst
			sl.consts[xi] = src.Const
			continue
		}
		sl.route[xi] = xExt
		gi, ok := groupOf[src.AtomIdx]
		if !ok {
			gi = len(sl.extGroups)
			groupOf[src.AtomIdx] = gi
			sl.extGroups = append(sl.extGroups, nil)
			sl.extSrcAtom = append(sl.extSrcAtom, src.AtomIdx)
			sl.extSrcCols = append(sl.extSrcCols, nil)
		}
		sl.extGroups[gi] = append(sl.extGroups[gi], xi)
	}
	for gi, positions := range sl.extGroups {
		srcAtom := sl.extSrcAtom[gi]
		srcS := cur[srcAtom]
		if srcS == nil {
			return nil, fmt.Errorf("plan: step %d reads atom %d before it was fetched", si, srcAtom)
		}
		for _, xi := range positions {
			ci, ok := srcS.Index(s.X[xi].Attr)
			if !ok {
				return nil, fmt.Errorf("plan: step %d: source column %s missing on atom %d", si, s.X[xi].Attr, srcAtom)
			}
			sl.extSrcCols[gi] = append(sl.extSrcCols[gi], ci)
		}
	}

	// New columns this step adds, in the original emission order:
	// constants (X order), external groups (group order), then Y.
	var newAttrs []string
	isNew := map[string]bool{}
	addNew := func(a string) {
		if isNew[a] {
			return
		}
		if curS != nil {
			if _, ok := curS.Index(a); ok {
				return
			}
		}
		isNew[a] = true
		newAttrs = append(newAttrs, a)
	}
	for xi, r := range sl.route {
		if r == xConst {
			addNew(ladderX[xi])
		}
	}
	for _, g := range sl.extGroups {
		for _, xi := range g {
			addNew(ladderX[xi])
		}
	}
	for _, y := range ladderY {
		addNew(y)
	}

	var schemaAttrs []relation.Attribute
	if curS != nil {
		schemaAttrs = append(schemaAttrs, curS.Attrs...)
		sl.prefixArity = curS.Arity()
	}
	for _, a := range newAttrs {
		schemaAttrs = append(schemaAttrs, base.Schema.Attrs[base.Schema.MustIndex(a)])
	}
	schema, err := relation.NewSchema(q.Atoms[ai].Name(), schemaAttrs...)
	if err != nil {
		return nil, fmt.Errorf("plan: step %d schema: %w", si, err)
	}
	sl.schema = schema

	newPos := make(map[string]int, len(newAttrs))
	for i, a := range newAttrs {
		newPos[a] = sl.prefixArity + i
	}
	sl.outX = make([]int, len(ladderX))
	for xi, a := range ladderX {
		if pos, ok := newPos[a]; ok {
			sl.outX[xi] = pos
		} else {
			sl.outX[xi] = -1
		}
	}
	sl.outY = make([]int, len(ladderY))
	for yi, a := range ladderY {
		if pos, ok := newPos[a]; ok {
			sl.outY[yi] = pos
		} else {
			sl.outY[yi] = -1
		}
	}
	return sl, nil
}

// buildEvalLayout precompiles the evaluation plan over the final fetched
// schemas. It returns nil when any required column is not statically
// present — those plans take the dynamic path.
func buildEvalLayout(q *query.SPC, db *relation.Database, finalSchema []*relation.Schema) *evalLayout {
	outSchema, err := query.OutputSchema(q, db)
	if err != nil {
		return nil
	}
	aliasIdx := make(map[string]int, len(q.Atoms))
	for i, a := range q.Atoms {
		aliasIdx[a.Name()] = i
	}
	baseDist := func(ai int, attr string) relation.Distance {
		s := db.MustRelation(q.Atoms[ai].Rel).Schema
		return s.Attrs[s.MustIndex(attr)].Dist
	}

	ev := &evalLayout{
		outSchema: outSchema,
		envOffset: make([]int, len(q.Atoms)),
		constSels: make([][]constSel, len(q.Atoms)),
	}
	off := 0
	for ai, s := range finalSchema {
		ev.envOffset[ai] = off
		off += s.Arity()
	}
	ev.envWidth = off

	ev.connecting = make([][]int, len(q.Atoms))
	for _, pd := range q.Preds {
		if !pd.Join {
			ai, ok := aliasIdx[pd.Left.Rel]
			if !ok {
				return nil
			}
			ci, ok := finalSchema[ai].Index(pd.Left.Attr)
			if !ok {
				return nil
			}
			ev.constSels[ai] = append(ev.constSels[ai], constSel{
				pred: pd, col: ci, dist: baseDist(ai, pd.Left.Attr),
			})
			continue
		}
		lA, lok := aliasIdx[pd.Left.Rel]
		rA, rok := aliasIdx[pd.Right.Rel]
		if !lok || !rok {
			return nil
		}
		lC, lok := finalSchema[lA].Index(pd.Left.Attr)
		rC, rok := finalSchema[rA].Index(pd.Right.Attr)
		if !lok || !rok {
			return nil
		}
		j := joinSel{
			pred:  pd,
			lAtom: lA, rAtom: rA,
			lCol: lC, rCol: rC,
			lDist:  baseDist(lA, pd.Left.Attr),
			joinAt: lA,
		}
		if rA > j.joinAt {
			j.joinAt = rA
		}
		ji := len(ev.joins)
		ev.joins = append(ev.joins, j)
		if j.joinAt == 0 {
			ev.residual = append(ev.residual, ji)
		} else {
			ev.connecting[j.joinAt] = append(ev.connecting[j.joinAt], ji)
		}
	}

	outCols, err := query.OutputCols(q, db)
	if err != nil {
		return nil
	}
	ev.outIdx = make([]int, len(outCols))
	for i, c := range outCols {
		ai, ok := aliasIdx[c.Rel]
		if !ok {
			return nil
		}
		ci, ok := finalSchema[ai].Index(c.Attr)
		if !ok {
			return nil
		}
		ev.outIdx[i] = ev.envOffset[ai] + ci
	}
	return ev
}
