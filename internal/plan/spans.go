package plan

import (
	"context"

	"repro/internal/access"
	"repro/internal/obs"
	"repro/internal/relation"
)

// shardSpans opens one "shard" child span per store shard the batch's
// X-values route to, under the span carried on ctx. The returned closer
// annotates each span with its xs and samples counts (samplesAt reports
// the per-index sample count once the batch has resolved) and ends them.
// The shards are fetched concurrently inside one scatter-gather call, so
// the spans share the fan-out window as their duration; the per-shard
// attribution lives in the attrs. With tracing disabled (no ctx span) the
// whole thing is a nil check and a no-op closer.
func shardSpans(ctx context.Context, l *access.Ladder, xs []relation.Tuple) func(samplesAt func(i int) int) {
	sp := obs.SpanFrom(ctx)
	if sp == nil || len(xs) == 0 {
		return func(func(int) int) {}
	}
	spans := map[int]*obs.Span{}
	xsBy := map[int]int{}
	for _, x := range xs {
		si := l.ShardOf(x)
		xsBy[si]++
		if _, ok := spans[si]; !ok {
			s := sp.Child("shard")
			s.SetInt("shard", int64(si))
			spans[si] = s
		}
	}
	return func(samplesAt func(i int) int) {
		samplesBy := map[int]int{}
		for i, x := range xs {
			samplesBy[l.ShardOf(x)] += samplesAt(i)
		}
		for si, s := range spans {
			s.SetInt("xs", int64(xsBy[si]))
			s.SetInt("samples", int64(samplesBy[si]))
			s.End()
		}
	}
}
