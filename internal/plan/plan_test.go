package plan

import (
	"testing"

	"repro/internal/access"
	"repro/internal/chase"
	"repro/internal/fixture"
	"repro/internal/query"
	"repro/internal/relation"
)

func setup(t testing.TB) (*relation.Database, *access.Schema) {
	t.Helper()
	db := fixture.Example1(7, 60, 400)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatalf("SchemaA0: %v", err)
	}
	return db, as
}

func mustChase(t testing.TB, q *query.SPC, as *access.Schema, db *relation.Database, budget int) *chase.Result {
	t.Helper()
	res, err := chase.Chase(q, as, db, budget)
	if err != nil {
		t.Fatalf("Chase: %v", err)
	}
	return res
}

func asSet(r *relation.Relation) map[string]bool {
	out := map[string]bool{}
	for _, t := range r.Distinct().Tuples {
		out[t.Key()] = true
	}
	return out
}

func TestExecuteQ2Exact(t *testing.T) {
	db, as := setup(t)
	q := fixture.Q2(3)
	budget := 500
	res := mustChase(t, q, as, db, budget)
	if !res.AllExact {
		t.Fatal("Q2 should chase exactly")
	}
	out, err := Execute(NewBounded(res, budget), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	exact, err := query.EvaluateSet(db, q)
	if err != nil {
		t.Fatalf("EvaluateSet: %v", err)
	}
	got, want := asSet(out.Rel), asSet(exact)
	if len(got) != len(want) {
		t.Fatalf("Q2 plan answers = %d, exact = %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing exact answer %q", k)
		}
	}
	if out.Stats.Accessed > budget {
		t.Errorf("accessed %d > budget %d", out.Stats.Accessed, budget)
	}
	if out.Stats.Truncated {
		t.Error("exact plan should not truncate")
	}
}

func TestExecuteQ1ExactWhenBudgetLarge(t *testing.T) {
	db, as := setup(t)
	q := fixture.Q1(3, 95)
	budget := db.Size() * 10
	res := mustChase(t, q, as, db, budget)
	out, err := Execute(NewBounded(res, budget), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	exact, err := query.EvaluateSet(db, q)
	if err != nil {
		t.Fatalf("EvaluateSet: %v", err)
	}
	got, want := asSet(out.Rel), asSet(exact)
	for k := range want {
		if !got[k] {
			t.Errorf("exact plan missing answer %q", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("exact plan has spurious answer %q", k)
		}
	}
}

// The defining property of a bounded query plan (§2.2): when every template
// is upgraded to resolution 0̄, the plan computes exact answers.
func TestPlanDefinitionUpgradedToExact(t *testing.T) {
	db, as := setup(t)
	q := fixture.Q1(3, 95)
	res := mustChase(t, q, as, db, 40) // tight budget: approximate plan
	p := NewBounded(res, db.Size()*10)
	for si := range res.Steps {
		if !res.Steps[si].Pinned {
			p.Ks[si] = res.Steps[si].Ladder.MaxK()
		}
	}
	out, err := Execute(p, db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	exact, err := query.EvaluateSet(db, q)
	if err != nil {
		t.Fatalf("EvaluateSet: %v", err)
	}
	got, want := asSet(out.Rel), asSet(exact)
	for k := range want {
		if !got[k] {
			t.Errorf("upgraded plan missing exact answer %q", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("upgraded plan has spurious answer %q", k)
		}
	}
}

func TestApproximatePlanCoversExactAnswers(t *testing.T) {
	db, as := setup(t)
	q := fixture.Q1(3, 95)
	budget := 60
	res := mustChase(t, q, as, db, budget)
	out, err := Execute(NewBounded(res, budget), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out.Stats.Accessed > budget {
		t.Fatalf("accessed %d > budget %d", out.Stats.Accessed, budget)
	}
	// Every exact answer must be within the fetch resolution of some
	// approximate answer (the coverage half of the RC guarantee).
	exact, err := query.EvaluateSet(db, q)
	if err != nil {
		t.Fatalf("EvaluateSet: %v", err)
	}
	if exact.Len() == 0 {
		t.Skip("no exact answers for this seed")
	}
	p := NewBounded(res, budget)
	// Tolerance: max resolution across output columns.
	tol := 0.0
	for _, c := range q.Output {
		atom := map[string]int{"h": 0, "f": 1, "p": 2}[c.Rel]
		if r := p.Chase.ResolutionOf(atom, c.Attr, p.Ks); r > tol {
			tol = r
		}
	}
	attrs := exact.Schema.Attrs
	for _, et := range exact.Tuples {
		best := -1.0
		for _, st := range out.Rel.Tuples {
			d := relation.TupleDistance(attrs, et, st)
			if best < 0 || d < best {
				best = d
			}
		}
		if best < 0 || best > tol+1e-9 {
			t.Errorf("exact answer %v not covered: nearest %g > tol %g", et, best, tol)
		}
	}
}

func TestBudgetTruncation(t *testing.T) {
	db, as := setup(t)
	// Pick a person with at least 3 friends so the first fetch alone
	// exceeds the runtime budget.
	friend := db.MustRelation("friend")
	counts := map[int64]int{}
	for _, tp := range friend.Tuples {
		pid, _ := tp[0].AsInt()
		counts[pid]++
	}
	var p0 int64 = -1
	for pid, n := range counts {
		if n >= 3 {
			p0 = pid
			break
		}
	}
	if p0 < 0 {
		t.Fatal("fixture has no person with 3 friends")
	}
	q := fixture.Q2(p0)
	res := mustChase(t, q, as, db, 500)
	// Execute with an absurdly small runtime budget: must truncate, not
	// overrun.
	out, err := Execute(NewBounded(res, 2), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out.Stats.Accessed > 2 {
		t.Errorf("accessed %d > runtime budget 2", out.Stats.Accessed)
	}
	if !out.Stats.Truncated {
		t.Error("expected truncation")
	}
}

func TestWeightsSingleAtomCount(t *testing.T) {
	db := fixture.Example1(7, 10, 100)
	as, err := access.BuildAt(db)
	if err != nil {
		t.Fatalf("BuildAt: %v", err)
	}
	// select type from poi — fetched via At at k=0: one representative
	// whose weight is the whole relation.
	q := &query.SPC{
		Atoms:  []query.Atom{{Rel: "poi", Alias: "h"}},
		Output: []query.Col{query.C("h", "type")},
	}
	res := mustChase(t, q, as, db, 1)
	out, err := Execute(NewBounded(res, 1), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out.Rel.Len() != 1 {
		t.Fatalf("k=0 fetch rows = %d, want 1", out.Rel.Len())
	}
	if out.Weights[0] != 100 {
		t.Errorf("representative weight = %d, want 100", out.Weights[0])
	}
}

func TestWeightsSumPreservedAcrossLevels(t *testing.T) {
	db := fixture.Example1(7, 10, 128)
	as, err := access.BuildAt(db)
	if err != nil {
		t.Fatalf("BuildAt: %v", err)
	}
	q := &query.SPC{
		Atoms:  []query.Atom{{Rel: "poi", Alias: "h"}},
		Output: []query.Col{query.C("h", "price")},
	}
	res := mustChase(t, q, as, db, 1)
	for _, k := range []int{0, 2, 4} {
		p := NewBounded(res, 1<<uint(k))
		for si := range res.Steps {
			if !res.Steps[si].Pinned {
				p.Ks[si] = k
			}
		}
		out, err := Execute(p, db)
		if err != nil {
			t.Fatalf("Execute k=%d: %v", k, err)
		}
		sum := 0
		for _, w := range out.Weights {
			sum += w
		}
		if sum != 128 {
			t.Errorf("k=%d: weight sum = %d, want 128", k, sum)
		}
	}
}

func TestTariffUpperBoundsAccess(t *testing.T) {
	db, as := setup(t)
	for _, budget := range []int{30, 100, 1000} {
		q := fixture.Q1(3, 95)
		res := mustChase(t, q, as, db, budget)
		p := NewBounded(res, budget)
		est := p.Tariff()
		out, err := Execute(p, db)
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if out.Stats.Accessed > est {
			t.Errorf("budget %d: accessed %d > tariff estimate %d", budget, out.Stats.Accessed, est)
		}
	}
}

func TestEmptyAnswerOnMissingKey(t *testing.T) {
	db, as := setup(t)
	// A pid that does not exist: exact plan, empty result.
	q := fixture.Q2(999999)
	res := mustChase(t, q, as, db, 500)
	out, err := Execute(NewBounded(res, 500), db)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if out.Rel.Len() != 0 {
		t.Errorf("expected empty answers, got %v", out.Rel.Tuples)
	}
}
