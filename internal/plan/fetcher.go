package plan

import (
	"context"

	"repro/internal/access"
	"repro/internal/relation"
)

// RemoteFetcher resolves the batched ladder fetches of the prefetch step
// against owners that may live outside this process — the seam the cluster
// layer (internal/cluster) plugs into the executor. The contract mirrors
// access.Ladder.FetchBatch/FetchBatchBlocks exactly: out[i] corresponds to
// xs[i] (nil for missing groups), every returned view is the group's FULL
// untruncated level — budget accounting and truncation stay with the
// caller, sequential in first-seen enumeration order, which is what keeps
// N-node execution byte-identical to the in-process path.
//
// A fetcher must return row-for-row the same samples the ladder itself
// would (TestClusterInvariance asserts this over the soundness corpus). A
// fetch that cannot be completed — a peer down, a corrupt frame — must
// surface as a typed error, never as silently missing data: the executor
// aborts the plan rather than answer from a partial view.
type RemoteFetcher interface {
	// FetchBatch resolves the level-k sample views for every X-value of xs,
	// in xs order.
	FetchBatch(ctx context.Context, l *access.Ladder, xs []relation.Tuple, k int) ([][]access.Sample, error)
	// FetchBatchBlocks is FetchBatch in columnar form (the ColumnarScan
	// path): one level block per X-value, nil for missing groups.
	FetchBatchBlocks(ctx context.Context, l *access.Ladder, xs []relation.Tuple, k int) ([]*access.LevelBlock, error)
}
