// Columnar execution path (ExecOpts.ColumnarScan).
//
// The row path (plan.go) materialises one []Value tuple per fetched sample
// during ξF and another per surviving join combination during ξE — the
// allocation profile that dominates hot-path CPU. This file keeps fetched
// data columnar end to end: fetch steps append the ladder's per-level
// columnar blocks (access.LevelBlock) into per-atom output blocks one
// column at a time, predicates and hash-join keys are evaluated
// block-at-a-time over the flat typed columns, and rows are materialised
// exactly once, at the answer boundary.
//
// Equivalence with the row path is load-bearing and deliberate:
//
//   - Fetch enumeration, the per-X fetch cache, budget accounting and the
//     truncation point replicate applyStep's order exactly, so
//     Stats.Accessed and Stats.Truncated are byte-identical.
//   - Block row hashing folds the same canonical encoding as Tuple.Hash,
//     and bucket lists preserve build-side insertion order, so hash joins
//     match and emit the same pairs in the same order as the TupleMap join.
//   - Predicate evaluation calls the same RelaxedHolds/Holds methods on
//     Values reconstructed (allocation-free) from the columns, with the
//     same exact-vs-relaxed classification.
//
// Executions the precompiled evaluator cannot serve (budget truncation
// left an atom with a partial schema, or the plan has no static eval
// layout) materialise the fetched blocks into FetchedAtoms and run the
// dynamic reference evaluator — the same fallback the row path takes.
// TestColumnarScanMatchesRowScan replays the full corpus both ways.
package plan

import (
	"context"
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/chase"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/relation"
)

// blockAtom is the columnar analogue of FetchedAtom: the data fetched for
// one atom as a column-wise block with per-row count weights.
type blockAtom struct {
	alias   string
	schema  *relation.Schema
	block   *relation.Block
	weights []int
}

// executeColumnar runs the full plan on the columnar path: block fetch,
// then block-at-a-time evaluation (or the dynamic reference evaluator over
// materialised rows when the precompiled layout cannot serve this run).
func executeColumnar(ctx context.Context, p *Bounded, db *relation.Database, o ExecOpts) (*Result, error) {
	lay, err := p.layoutFor(db)
	if err != nil {
		return nil, err
	}
	atoms, stats, err := executeFetchBlocks(ctx, p, lay, o)
	if err != nil {
		return nil, err
	}
	var res *Result
	if lay.eval != nil && blocksComplete(lay, atoms) {
		res, err = evaluateColumnar(ctx, p, lay, atoms)
	} else {
		res, err = evaluateDynamic(ctx, p, db, materializeAtoms(p, lay, atoms))
	}
	if err != nil {
		return nil, err
	}
	res.Stats = *stats
	return res, nil
}

// blocksComplete mirrors layoutMatches: every atom carries its precompiled
// final schema (pointer identity), so the precompiled evaluator applies.
func blocksComplete(lay *planLayout, atoms []*blockAtom) bool {
	for ai, ba := range atoms {
		schema := lay.emptySchema[ai]
		if ba != nil {
			schema = ba.schema
		}
		if schema != lay.finalSchema[ai] {
			return false
		}
	}
	return true
}

// materializeAtoms converts fetched blocks into the row form the dynamic
// reference evaluator consumes; never-fetched atoms become empty relations
// over their used attributes, exactly as executeFetch leaves them.
func materializeAtoms(p *Bounded, lay *planLayout, atoms []*blockAtom) []*FetchedAtom {
	out := make([]*FetchedAtom, len(atoms))
	for ai, ba := range atoms {
		if ba == nil {
			out[ai] = &FetchedAtom{
				Alias: atomAlias(p, ai),
				Rel:   relation.NewRelation(lay.emptySchema[ai]),
			}
			continue
		}
		rel := relation.NewRelation(ba.schema)
		rel.Tuples = ba.block.Tuples()
		out[ai] = &FetchedAtom{Alias: ba.alias, Rel: rel, Weights: ba.weights}
	}
	return out
}

// executeFetchBlocks runs ξF on the columnar path, mirroring executeFetch
// step for step (level selection, budget accounting, truncation break).
func executeFetchBlocks(ctx context.Context, p *Bounded, lay *planLayout, o ExecOpts) ([]*blockAtom, *Stats, error) {
	stats := &Stats{}
	atoms := make([]*blockAtom, len(p.Chase.Query.Atoms))
	for si := range p.Chase.Steps {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		s := &p.Chase.Steps[si]
		k := s.K
		if !s.Pinned && p.Ks != nil {
			k = p.Ks[si]
		}
		if err := applyStepBlocks(ctx, p, atoms, &lay.steps[si], s, si, k, o, stats); err != nil {
			return nil, nil, err
		}
		if stats.Truncated {
			break
		}
	}
	return atoms, stats, nil
}

// assembleXBlock writes the step's ladder-order X tuple for enumeration row
// ri of blk into dst, mirroring assembleX (ri < 0 means the virtual row of
// a first fetch, which has no own columns).
func assembleXBlock(sl *stepLayout, fill []relation.Value, blk *relation.Block, ri int, dst relation.Tuple) {
	for xi, r := range sl.route {
		switch r {
		case xOwn:
			dst[xi] = blk.Value(ri, sl.ownCol[xi])
		case xConst:
			dst[xi] = sl.consts[xi]
		default:
			dst[xi] = fill[xi]
		}
	}
}

// forEachEnumBlock enumerates a step's fetch enumeration over block rows —
// existing rows (or one virtual row when blk is nil) × the cross product of
// external valuations — in the same deterministic order as forEachEnum,
// calling visit with the current row index (-1 when virtual) and weight.
func forEachEnumBlock(blk *relation.Block, weights []int, extVals [][]relation.Tuple, sl *stepLayout, fill []relation.Value, visit func(ri, w int) bool) {
	var walkExt func(gi, ri, w int) bool
	walkExt = func(gi, ri, w int) bool {
		if gi == len(sl.extGroups) {
			return visit(ri, w)
		}
		for _, vt := range extVals[gi] {
			for i, xi := range sl.extGroups[gi] {
				fill[xi] = vt[i]
			}
			if !walkExt(gi+1, ri, w) {
				return false
			}
		}
		return true
	}
	if blk == nil {
		walkExt(0, -1, 1)
		return
	}
	for ri := 0; ri < blk.Rows(); ri++ {
		if !walkExt(0, ri, weights[ri]) {
			return
		}
	}
}

// colFill says where one output column of a fetch step gets its values for
// each enumeration visit: broadcast from the prefix row, broadcast from the
// assembled X tuple, or bulk-appended from the fetched level's Y column.
// Mirrors buildRow's write order (Y wins where X and Y share a column).
type colFill struct {
	prefixCol int
	xPos      int
	yCol      int
}

func buildColFills(sl *stepLayout, arity int) []colFill {
	fills := make([]colFill, arity)
	for p := range fills {
		fills[p] = colFill{prefixCol: -1, xPos: -1, yCol: -1}
		if p < sl.prefixArity {
			fills[p].prefixCol = p
		}
	}
	for xi, pos := range sl.outX {
		if pos >= 0 {
			fills[pos] = colFill{prefixCol: -1, xPos: xi, yCol: -1}
		}
	}
	for yi, pos := range sl.outY {
		if pos >= 0 {
			fills[pos] = colFill{prefixCol: -1, xPos: -1, yCol: yi}
		}
	}
	return fills
}

// applyStepBlocks runs one fetch operation on the columnar path: same
// enumeration, fetch cache, budget accounting and truncation as applyStep,
// but the output atom is built one column at a time — the fetched level's Y
// columns are appended as ranges and the prefix/X values broadcast — so no
// per-sample row tuple is ever allocated.
func applyStepBlocks(ctx context.Context, p *Bounded, atoms []*blockAtom, sl *stepLayout, s *chase.Step, si, k int, o ExecOpts, stats *Stats) error {
	ai := sl.atom
	cur := atoms[ai]
	budget, workers := o.Budget, o.Workers

	// Same per-step span as the row path's applyStep.
	fs := obs.SpanFrom(ctx).Child("fetch_step")
	if fs != nil {
		fs.SetInt("step", int64(si))
		fs.SetInt("level", int64(k))
		ctx = obs.ContextWithSpan(ctx, fs)
		before := stats.Accessed
		defer func() {
			fs.SetInt("accessed", int64(stats.Accessed-before))
			fs.SetBool("truncated", stats.Truncated)
			fs.End()
		}()
	}

	// Materialise distinct joint valuations per external group, in the same
	// first-seen row order as the row path.
	extVals := make([][]relation.Tuple, len(sl.extGroups))
	for gi := range sl.extGroups {
		ba := atoms[sl.extSrcAtom[gi]]
		if ba == nil {
			return fmt.Errorf("plan: step %d reads atom %d before it was fetched", si, sl.extSrcAtom[gi])
		}
		idx := sl.extSrcCols[gi]
		seen := relation.NewTupleSet(ba.block.Rows())
		scratch := make(relation.Tuple, len(idx))
		for ri := 0; ri < ba.block.Rows(); ri++ {
			for i, ci := range idx {
				scratch[i] = ba.block.Value(ri, ci)
			}
			if !seen.Has(scratch) {
				pt := append(relation.Tuple(nil), scratch...)
				seen.Add(pt)
				extVals[gi] = append(extVals[gi], pt)
			}
		}
	}

	out := &blockAtom{
		alias:  atomAlias(p, ai),
		schema: sl.schema,
		block:  relation.NewBlock(sl.schema.Arity()),
	}
	fills := buildColFills(sl, sl.schema.Arity())

	// Fetch cache: one budget-accounted columnar level view per distinct
	// X-value, truncated with a prefix view where the row path truncates
	// its sample slice. The cached key tuple rides along so emission can
	// broadcast X values without holding the reused scratch tuple.
	cache := relation.NewTupleMap[cachedLevel](0)

	// Same scatter-gather gate as the row path: results and accounting are
	// identical either way, the batch just spreads index lookups.
	enumCount := 1
	if cur != nil {
		enumCount = cur.block.Rows()
	}
	for gi := range extVals {
		if enumCount >= o.MinParallelEmitRows {
			break
		}
		enumCount *= len(extVals[gi])
	}
	prefetched := o.Fetcher != nil || (workers > 1 && enumCount >= o.MinParallelEmitRows)
	fs.SetBool("prefetch", prefetched)
	if prefetched {
		if err := prefetchStepBlocks(ctx, cur, extVals, sl, s, k, budget, stats, cache, workers, o.Fetcher); err != nil {
			return err
		}
	}

	// fetch resolves one X-value with budget accounting; identical charge
	// order and truncation point to the row path's fetch closure.
	fetch := func(xt relation.Tuple) cachedLevel {
		if got, ok := cache.Get(xt); ok {
			return got
		}
		key := append(relation.Tuple(nil), xt...)
		got := cachedLevel{key: key}
		if stats.Truncated {
			cache.Put(key, got)
			return got
		}
		lvl := s.Ladder.FetchBlock(xt, k)
		n := 0
		if lvl != nil {
			n = lvl.Rows()
		}
		if stats.Accessed+n > budget {
			room := budget - stats.Accessed
			if room < 0 {
				room = 0
			}
			lvl = lvl.Prefix(room)
			n = room
			stats.Truncated = true
		}
		stats.Accessed += n
		got.lvl = lvl
		cache.Put(key, got)
		return got
	}

	// First pass: enumerate, fetch and budget-account every level in order,
	// remembering the non-empty emissions and their total row count.
	fill := make([]relation.Value, len(sl.route))
	xt := make(relation.Tuple, len(sl.route))
	visited := 0
	var curBlk *relation.Block
	var curW []int
	if cur != nil {
		curBlk, curW = cur.block, cur.weights
	}
	var emits []stepEmit
	total := 0
	forEachEnumBlock(curBlk, curW, extVals, sl, fill, func(ri, w int) bool {
		if visited++; visited%cancelStride == 0 && ctx.Err() != nil {
			return false
		}
		assembleXBlock(sl, fill, curBlk, ri, xt)
		got := fetch(xt)
		if got.lvl == nil || got.lvl.Rows() == 0 {
			return true
		}
		emits = append(emits, stepEmit{lvl: got.lvl, key: got.key, ri: ri, w: w})
		total += got.lvl.Rows()
		return true
	})
	if err := ctx.Err(); err != nil {
		return err
	}

	// Second pass: build the output block column-wise with the total known.
	// A step that emits exactly one level (every first fetch, and any step
	// with one surviving X-value) serves that level's Y columns zero-copy as
	// column views; multi-emit steps reserve each column's full capacity
	// once, then bulk-append.
	if len(emits) == 1 {
		e := emits[0]
		n := e.lvl.Rows()
		for p := range fills {
			f := &fills[p]
			switch {
			case f.yCol >= 0:
				out.block.SetColView(p, e.lvl.Y.Col(f.yCol))
			case f.xPos >= 0:
				out.block.Col(p).AppendRepeat(e.key[f.xPos], n)
			default:
				out.block.Col(p).AppendRepeat(curBlk.Value(e.ri, f.prefixCol), n)
			}
		}
		out.block.AddRows(n)
		out.weights = make([]int, n)
		for i, c := range e.lvl.Counts {
			out.weights[i] = e.w * c
		}
	} else if len(emits) > 0 {
		first := emits[0]
		for p := range fills {
			f := &fills[p]
			col := out.block.Col(p)
			switch {
			case f.yCol >= 0:
				src := first.lvl.Y.Col(f.yCol)
				if !src.Mixed() {
					col.Reserve(src.Kind(), total)
				}
			case f.xPos >= 0:
				col.Reserve(first.key[f.xPos].Kind(), total)
			default:
				col.Reserve(curBlk.Value(first.ri, f.prefixCol).Kind(), total)
			}
		}
		out.weights = make([]int, 0, total)
		for _, e := range emits {
			n := e.lvl.Rows()
			for p := range fills {
				f := &fills[p]
				col := out.block.Col(p)
				switch {
				case f.yCol >= 0:
					col.AppendRange(e.lvl.Y.Col(f.yCol), 0, n)
				case f.xPos >= 0:
					col.AppendRepeat(e.key[f.xPos], n)
				default:
					col.AppendRepeat(curBlk.Value(e.ri, f.prefixCol), n)
				}
			}
			out.block.AddRows(n)
			for _, c := range e.lvl.Counts {
				out.weights = append(out.weights, e.w*c)
			}
		}
	}
	atoms[ai] = out
	return nil
}

// cachedLevel is one fetch-cache entry: the budget-truncated level view (nil
// for missing groups or post-truncation fetches) and the owned copy of its
// X-key, which emission broadcasts into output columns.
type cachedLevel struct {
	lvl *access.LevelBlock
	key relation.Tuple
}

// stepEmit is one non-empty emission of a fetch step: the level to append,
// the X-key to broadcast, and the enumeration row/weight it extends.
type stepEmit struct {
	lvl *access.LevelBlock
	key relation.Tuple
	ri  int
	w   int
}

// prefetchStepBlocks is prefetchStep on the columnar path: collect the
// distinct X-values in first-seen enumeration order, resolve them with one
// scatter-gather batch of level blocks, and budget-account sequentially in
// exactly that order — the same tuples the lazy path would charge,
// truncated (as a block prefix view) at the same point. A non-nil fetcher
// replaces the in-process batch with the routed one (the cluster seam).
func prefetchStepBlocks(ctx context.Context, cur *blockAtom, extVals [][]relation.Tuple, sl *stepLayout, s *chase.Step, k, budget int, stats *Stats, cache *relation.TupleMap[cachedLevel], workers int, fetcher RemoteFetcher) error {
	fill := make([]relation.Value, len(sl.route))
	scratch := make(relation.Tuple, len(sl.route))
	seen := relation.NewTupleSet(0)
	var xs []relation.Tuple
	visited := 0
	var curBlk *relation.Block
	var curW []int
	if cur != nil {
		curBlk, curW = cur.block, cur.weights
	}
	forEachEnumBlock(curBlk, curW, extVals, sl, fill, func(ri, w int) bool {
		if visited++; visited%cancelStride == 0 && ctx.Err() != nil {
			return false
		}
		assembleXBlock(sl, fill, curBlk, ri, scratch)
		if seen.Has(scratch) {
			return true
		}
		xt := append(relation.Tuple(nil), scratch...)
		seen.Add(xt)
		xs = append(xs, xt)
		return true
	})
	if err := ctx.Err(); err != nil {
		return err
	}

	var raw []*access.LevelBlock
	if fetcher != nil {
		var err error
		raw, err = fetcher.FetchBatchBlocks(ctx, s.Ladder, xs, k)
		if err != nil {
			return err
		}
	} else {
		done := shardSpans(ctx, s.Ladder, xs)
		raw = s.Ladder.FetchBatchBlocks(xs, k, workers)
		done(func(i int) int {
			if raw[i] == nil {
				return 0
			}
			return raw[i].Rows()
		})
	}

	for i, xt := range xs {
		lvl := raw[i]
		if stats.Truncated {
			cache.Put(xt, cachedLevel{key: xt})
			continue
		}
		n := 0
		if lvl != nil {
			n = lvl.Rows()
		}
		if stats.Accessed+n > budget {
			room := budget - stats.Accessed
			if room < 0 {
				room = 0
			}
			lvl = lvl.Prefix(room)
			n = room
			stats.Truncated = true
		}
		stats.Accessed += n
		cache.Put(xt, cachedLevel{lvl: lvl, key: xt})
	}
	return nil
}

// evaluateColumnar is the precompiled evaluation path over blocks: constant
// selections produce surviving index lists, joins hash block rows directly
// and gather matched pairs column-wise, and the final projection is the
// only place rows are materialised. Classification of exact vs relaxed
// predicates, evaluation order and emission order replicate evaluateFast.
func evaluateColumnar(ctx context.Context, p *Bounded, lay *planLayout, atoms []*blockAtom) (*Result, error) {
	q := p.Chase.Query
	ev := lay.eval
	resOf := func(ai int, attr string) float64 {
		return p.Chase.ResolutionOf(ai, attr, p.Ks)
	}

	// env is the joined environment so far; envW its per-row weights. env
	// may alias an atom's fetched block (read-only) until the first join
	// replaces it with a freshly gathered block.
	var env *relation.Block
	var envW []int

	for ai := range q.Atoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ba := atoms[ai]
		blk := ba.block
		ws := ba.weights

		// Relaxed constant selection, hoisted like the row path; the
		// surviving rows become an index list instead of a tuple slice.
		// sel == nil means every row survives (no active selections).
		type activeSel struct {
			col  int
			tol  float64
			dist relation.Distance
			pred query.Pred
		}
		var active []activeSel
		for _, cs := range ev.constSels[ai] {
			r := resOf(ai, cs.pred.Left.Attr)
			if math.IsInf(r, 1) {
				continue
			}
			active = append(active, activeSel{col: cs.col, tol: r, dist: cs.dist, pred: cs.pred})
		}
		var sel []int32
		selAll := len(active) == 0
		if !selAll {
			for ri := 0; ri < blk.Rows(); ri++ {
				ok := true
				for _, cs := range active {
					if !cs.pred.RelaxedHolds(cs.dist, blk.Value(ri, cs.col), relation.Null(), cs.tol) {
						ok = false
						break
					}
				}
				if ok {
					sel = append(sel, int32(ri))
				}
			}
			if len(sel) == blk.Rows() {
				// Every row survived: drop the index list so downstream
				// stages take the zero-copy all-rows path.
				selAll, sel = true, nil
			}
		}
		nSel := len(sel)
		if selAll {
			nSel = blk.Rows()
		}
		// selRow maps a filtered position to its block row.
		selRow := func(fi int) int {
			if selAll {
				return fi
			}
			return int(sel[fi])
		}

		if ai == 0 {
			if selAll {
				// Nothing filtered: serve the fetched block directly
				// (read-only) — the common single-atom fast path.
				env, envW = blk, ws
				continue
			}
			env = relation.NewBlock(blk.Width())
			for j := 0; j < blk.Width(); j++ {
				env.Col(j).AppendIndexes(blk.Col(j), sel)
			}
			env.AddRows(len(sel))
			envW = make([]int, len(sel))
			for i, ri := range sel {
				envW[i] = ws[ri]
			}
			continue
		}

		// Classify connecting join predicates exactly as evaluateFast: +inf
		// tolerance means unbounded resolution, enforced exactly.
		type activeJoin struct {
			j     *joinSel
			tol   float64
			exact bool
		}
		var exactEq []*joinSel
		var relaxed []activeJoin
		for _, ji := range ev.connecting[ai] {
			j := &ev.joins[ji]
			tol := (resOf(j.lAtom, j.pred.Left.Attr) + resOf(j.rAtom, j.pred.Right.Attr)) / 2
			bothNew := j.lAtom == ai && j.rAtom == ai
			if j.pred.Op == query.OpEq && (tol == 0 || math.IsInf(tol, 1)) && !bothNew {
				exactEq = append(exactEq, j)
			} else {
				relaxed = append(relaxed, activeJoin{j: j, tol: tol, exact: math.IsInf(tol, 1)})
			}
		}

		valOf := func(side int, j *joinSel, ei, ri int) relation.Value {
			a, c := j.lAtom, j.lCol
			if side == 1 {
				a, c = j.rAtom, j.rCol
			}
			if a == ai {
				return blk.Value(ri, c)
			}
			return env.Value(ei, ev.envOffset[a]+c)
		}

		// Match phase: collect surviving (env row, atom row) pairs in the
		// row path's emission order, then gather them column-wise. Seed
		// capacity at the environment's row count — joins in α-bounded plans
		// rarely shrink the environment by much more than they grow it.
		capHint := env.Rows()
		eIdx := make([]int32, 0, capHint)
		aIdx := make([]int32, 0, capHint)
		joinedW := make([]int, 0, capHint)
		match := func(ei, ri int) {
			for _, aj := range relaxed {
				lv := valOf(0, aj.j, ei, ri)
				rv := valOf(1, aj.j, ei, ri)
				if aj.exact {
					if !aj.j.pred.Holds(lv, rv) {
						return
					}
					continue
				}
				if !aj.j.pred.RelaxedHolds(aj.j.lDist, lv, rv, aj.tol) {
					return
				}
			}
			eIdx = append(eIdx, int32(ei))
			aIdx = append(aIdx, int32(ri))
			joinedW = append(joinedW, envW[ei]*ws[ri])
		}

		if len(exactEq) > 0 {
			// Hash join on the exact-equality keys, block-at-a-time: build
			// rows are bucketed by the hash of their key projection (the
			// same canonical fold as Tuple.Hash) in filtered order; probes
			// verify per candidate with canonical key equality, so matches
			// and their order are exactly the TupleMap join's.
			atomKeyIdx := make([]int, len(exactEq))
			envKeyIdx := make([]int, len(exactEq))
			for i, j := range exactEq {
				if j.lAtom == ai {
					atomKeyIdx[i] = j.lCol
					envKeyIdx[i] = ev.envOffset[j.rAtom] + j.rCol
				} else {
					atomKeyIdx[i] = j.rCol
					envKeyIdx[i] = ev.envOffset[j.lAtom] + j.lCol
				}
			}
			ht := make(map[uint64][]int32, nSel)
			for fi := 0; fi < nSel; fi++ {
				ri := selRow(fi)
				h := blk.HashCols(ri, atomKeyIdx)
				ht[h] = append(ht[h], int32(ri))
			}
			for ei := 0; ei < env.Rows(); ei++ {
				h := env.HashCols(ei, envKeyIdx)
				for _, ri := range ht[h] {
					if env.ColsKeyEqual(ei, envKeyIdx, blk, int(ri), atomKeyIdx) {
						match(ei, int(ri))
					}
				}
			}
		} else {
			if env.Rows()*nSel > query.MaxIntermediate {
				return nil, fmt.Errorf("plan: relaxed join of %d x %d rows exceeds limit", env.Rows(), nSel)
			}
			for ei := 0; ei < env.Rows(); ei++ {
				for fi := 0; fi < nSel; fi++ {
					match(ei, selRow(fi))
				}
			}
		}

		// Gather phase: one AppendIndexes per column builds the new
		// environment without materialising any row.
		prevWidth := ev.envOffset[ai]
		next := relation.NewBlock(prevWidth + blk.Width())
		for j := 0; j < prevWidth; j++ {
			next.Col(j).AppendIndexes(env.Col(j), eIdx)
		}
		for j := 0; j < blk.Width(); j++ {
			next.Col(prevWidth+j).AppendIndexes(blk.Col(j), aIdx)
		}
		next.AddRows(len(eIdx))
		env, envW = next, joinedW
	}

	// Residual join predicates within the final environment.
	for _, ji := range ev.residual {
		j := &ev.joins[ji]
		tol := (resOf(j.lAtom, j.pred.Left.Attr) + resOf(j.rAtom, j.pred.Right.Attr)) / 2
		li := ev.envOffset[j.lAtom] + j.lCol
		ri := ev.envOffset[j.rAtom] + j.rCol
		var kept []int32
		var keptW []int
		for i := 0; i < env.Rows(); i++ {
			ok := false
			if math.IsInf(tol, 1) {
				ok = j.pred.Holds(env.Value(i, li), env.Value(i, ri))
			} else {
				ok = j.pred.RelaxedHolds(j.lDist, env.Value(i, li), env.Value(i, ri), tol)
			}
			if ok {
				kept = append(kept, int32(i))
				keptW = append(keptW, envW[i])
			}
		}
		if len(kept) == env.Rows() {
			continue
		}
		next := relation.NewBlock(env.Width())
		for j := 0; j < env.Width(); j++ {
			next.Col(j).AppendIndexes(env.Col(j), kept)
		}
		next.AddRows(len(kept))
		env, envW = next, keptW
	}

	// Project and materialise — the single row-building pass of the whole
	// run, over one shared value arena.
	res := &Result{Rel: relation.NewRelation(ev.outSchema)}
	n := env.Rows()
	if n == 0 {
		return res, nil
	}
	width := len(ev.outIdx)
	arena := make(relation.Tuple, 0, n*width)
	res.Rel.Tuples = make([]relation.Tuple, 0, n)
	res.Weights = append(res.Weights, envW...)
	for i := 0; i < n; i++ {
		start := len(arena)
		for _, ci := range ev.outIdx {
			arena = append(arena, env.Value(i, ci))
		}
		res.Rel.Tuples = append(res.Rel.Tuples, arena[start:len(arena):len(arena)])
	}
	return res, nil
}
