package accuracy

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// testDB mirrors the POI instance used across the suite: five POIs with
// hand-checkable distances (price scale 100).
func testDB(t testing.TB) *relation.Database {
	t.Helper()
	db := relation.NewDatabase()
	poi := relation.NewRelation(relation.MustSchema("poi",
		relation.Attr("address", relation.KindString, relation.Discrete()),
		relation.Attr("type", relation.KindString, relation.Discrete()),
		relation.Attr("city", relation.KindString, relation.Trivial()),
		relation.Attr("price", relation.KindFloat, relation.Numeric(100)),
	))
	poi.MustAppend(
		relation.Tuple{relation.String("a1"), relation.String("hotel"), relation.String("NYC"), relation.Float(90)},
		relation.Tuple{relation.String("a2"), relation.String("hotel"), relation.String("NYC"), relation.Float(99)},
		relation.Tuple{relation.String("a3"), relation.String("hotel"), relation.String("Chicago"), relation.Float(80)},
		relation.Tuple{relation.String("a4"), relation.String("bar"), relation.String("NYC"), relation.Float(20)},
		relation.Tuple{relation.String("a5"), relation.String("hotel"), relation.String("Boston"), relation.Float(200)},
	)
	db.MustAdd(poi)
	return db
}

func cheapHotels() *query.SPC {
	return &query.SPC{
		Atoms: []query.Atom{{Rel: "poi", Alias: "h"}},
		Preds: []query.Pred{
			query.EqC(query.C("h", "type"), relation.String("hotel")),
			query.LeC(query.C("h", "price"), relation.Float(95)),
		},
		Output: []query.Col{query.C("h", "address"), query.C("h", "price")},
	}
}

func answers(vals ...[2]any) *relation.Relation {
	r := relation.NewRelation(relation.MustSchema("s",
		relation.Attr("h.address", relation.KindString, relation.Discrete()),
		relation.Attr("h.price", relation.KindFloat, relation.Numeric(100)),
	))
	for _, v := range vals {
		r.MustAppend(relation.Tuple{relation.String(v[0].(string)), relation.Float(v[1].(float64))})
	}
	return r
}

func newEval(t *testing.T, e query.Expr) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(testDB(t), e)
	if err != nil {
		t.Fatalf("NewEvaluator: %v", err)
	}
	return ev
}

func TestRCExactAnswersPerfect(t *testing.T) {
	ev := newEval(t, cheapHotels())
	if ev.Exact.Len() != 2 {
		t.Fatalf("exact = %v", ev.Exact.Tuples)
	}
	rep := ev.RC(ev.Exact)
	if rep.Accuracy != 1 || rep.Frel != 1 || rep.Fcov != 1 {
		t.Errorf("RC(exact) = %+v, want all 1", rep)
	}
}

func TestRCEmptyAnswerSet(t *testing.T) {
	ev := newEval(t, cheapHotels())
	rep := ev.RC(answers())
	if rep.Accuracy != 0 || rep.Fcov != 0 {
		t.Errorf("RC(empty) = %+v, want accuracy 0", rep)
	}
	// Empty S has vacuously perfect relevance.
	if rep.Frel != 1 {
		t.Errorf("Frel(empty) = %g, want 1", rep.Frel)
	}
}

func TestRCEmptyExact(t *testing.T) {
	// No hotel is that cheap: Q(D) = ∅, so Fcov = 1 for any S.
	q := &query.SPC{
		Atoms: []query.Atom{{Rel: "poi", Alias: "h"}},
		Preds: []query.Pred{
			query.EqC(query.C("h", "type"), relation.String("hotel")),
			query.LeC(query.C("h", "price"), relation.Float(10)),
		},
		Output: []query.Col{query.C("h", "address"), query.C("h", "price")},
	}
	ev := newEval(t, q)
	if ev.Exact.Len() != 0 {
		t.Fatal("exact should be empty")
	}
	rep := ev.RC(answers([2]any{"a3", 80.0}))
	if rep.Fcov != 1 {
		t.Errorf("Fcov = %g, want 1 when Q(D) empty", rep.Fcov)
	}
	// a3 enters at r = |80-10|/100 = 0.7, and d(s, a3)=0, so Frel = 1/1.7.
	if math.Abs(rep.Frel-1/1.7) > 1e-9 {
		t.Errorf("Frel = %g, want %g", rep.Frel, 1/1.7)
	}
}

func TestRCExample2SensibleAnswer(t *testing.T) {
	// Example 2 of the paper: a $99 hotel is a sensible answer with RC > 0
	// even though its F-measure is 0.
	ev := newEval(t, cheapHotels())
	s := answers([2]any{"a2", 99.0})
	rep := ev.RC(s)
	// Relevance: a2 enters the relaxed query at r = 0.04; d(s, a2) = 0.
	if math.Abs(rep.RelDist-0.04) > 1e-9 {
		t.Errorf("RelDist = %g, want 0.04", rep.RelDist)
	}
	// Coverage: both exact answers differ in address (discrete => 1).
	if math.Abs(rep.CovDist-1) > 1e-9 {
		t.Errorf("CovDist = %g, want 1", rep.CovDist)
	}
	if math.Abs(rep.Accuracy-0.5) > 1e-9 {
		t.Errorf("Accuracy = %g, want 0.5", rep.Accuracy)
	}
	if f := ev.FMeasure(s); f != 0 {
		t.Errorf("FMeasure = %g, want 0", f)
	}
}

func TestRCSupersetKeepsCoverage(t *testing.T) {
	ev := newEval(t, cheapHotels())
	// Exact answers plus one extra near-miss: coverage stays perfect,
	// relevance degrades slightly.
	s := answers([2]any{"a1", 90.0}, [2]any{"a3", 80.0}, [2]any{"a2", 99.0})
	rep := ev.RC(s)
	if rep.Fcov != 1 {
		t.Errorf("Fcov = %g, want 1 (S ⊇ exact)", rep.Fcov)
	}
	if math.Abs(rep.RelDist-0.04) > 1e-9 {
		t.Errorf("RelDist = %g, want 0.04 (the $99 hotel)", rep.RelDist)
	}
}

func TestRCIrrelevantAnswerPunished(t *testing.T) {
	ev := newEval(t, cheapHotels())
	// A $200 Boston hotel is far from the query's intent. Via candidate
	// a5 itself δrel would be 1.05 (its entry range); the optimum is the
	// $99 hotel a2: max(enter 0.04, distance max(1, 1.01)) = 1.01.
	rep := ev.RC(answers([2]any{"a5", 200.0}))
	if math.Abs(rep.RelDist-1.01) > 1e-9 {
		t.Errorf("RelDist = %g, want 1.01", rep.RelDist)
	}
	if rep.Accuracy >= 0.5 {
		t.Errorf("Accuracy = %g, want < 0.5", rep.Accuracy)
	}
}

func TestRCFabricatedAnswer(t *testing.T) {
	ev := newEval(t, cheapHotels())
	// An answer not matching any data tuple: nearest candidate is a1
	// (same price band) but the address differs (discrete distance 1).
	rep := ev.RC(answers([2]any{"nowhere", 90.0}))
	if rep.RelDist < 1 {
		t.Errorf("RelDist = %g, want >= 1 for a fabricated tuple", rep.RelDist)
	}
}

func TestMAC(t *testing.T) {
	ev := newEval(t, cheapHotels())
	if got := ev.MAC(ev.Exact); got != 1 {
		t.Errorf("MAC(exact) = %g, want 1", got)
	}
	if got := ev.MAC(answers()); got != 0 {
		t.Errorf("MAC(empty) = %g, want 0", got)
	}
	// One perfect match of two exact answers: distance (0 + 1 penalty)/2.
	got := ev.MAC(answers([2]any{"a1", 90.0}))
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MAC(half) = %g, want 0.5", got)
	}
	// A near-match scores between 0 and 1.
	near := ev.MAC(answers([2]any{"a1", 92.0}, [2]any{"a3", 80.0}))
	if near <= 0.9 || near >= 1 {
		t.Errorf("MAC(near) = %g, want in (0.9, 1)", near)
	}
}

func TestFMeasure(t *testing.T) {
	ev := newEval(t, cheapHotels())
	if got := ev.FMeasure(ev.Exact); got != 1 {
		t.Errorf("F(exact) = %g", got)
	}
	// One of two exact answers: precision 1, recall 0.5 -> F = 2/3.
	got := ev.FMeasure(answers([2]any{"a1", 90.0}))
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("F = %g, want 2/3", got)
	}
	if got := ev.FMeasure(answers()); got != 0 {
		t.Errorf("F(empty) = %g", got)
	}
}

// --- group-by -----------------------------------------------------------

func hotelsByCity(agg query.AggKind) *query.GroupBy {
	return &query.GroupBy{
		In: &query.SPC{
			Atoms:  []query.Atom{{Rel: "poi", Alias: "h"}},
			Preds:  []query.Pred{query.EqC(query.C("h", "type"), relation.String("hotel"))},
			Output: []query.Col{query.C("h", "city"), query.C("h", "price")},
		},
		Keys: []query.Col{query.C("h", "city")},
		Agg:  agg,
		On:   query.C("h", "price"),
		As:   "agg",
	}
}

func aggAnswers(scale float64, vals ...[2]any) *relation.Relation {
	r := relation.NewRelation(relation.MustSchema("s",
		relation.Attr("h.city", relation.KindString, relation.Trivial()),
		relation.Attr("agg", relation.KindFloat, relation.Numeric(scale)),
	))
	for _, v := range vals {
		r.MustAppend(relation.Tuple{relation.String(v[0].(string)), relation.Float(v[1].(float64))})
	}
	return r
}

func TestRCGroupByCountExample3(t *testing.T) {
	// Analogue of the paper's Example 3: counts per city with errors.
	ev := newEval(t, hotelsByCity(query.AggCount))
	// Exact: NYC -> 2, Chicago -> 1, Boston -> 1.
	if ev.Exact.Len() != 3 {
		t.Fatalf("exact = %v", ev.Exact.Tuples)
	}
	s := aggAnswers(1, [2]any{"NYC", 3.0}, [2]any{"Chicago", 1.0}, [2]any{"Boston", 1.0})
	rep := ev.RC(s)
	// Coverage: NYC count off by 1 (scale 1) dominates.
	if math.Abs(rep.CovDist-1) > 1e-9 {
		t.Errorf("CovDist = %g, want 1 (count off by one)", rep.CovDist)
	}
	// Relevance: every key value is a real group (πX relevance is 0).
	if rep.RelDist != 0 {
		t.Errorf("RelDist = %g, want 0", rep.RelDist)
	}
}

func TestRCGroupByDuplicateKeysPunished(t *testing.T) {
	ev := newEval(t, hotelsByCity(query.AggCount))
	s := aggAnswers(1, [2]any{"NYC", 2.0}, [2]any{"NYC", 3.0})
	rep := ev.RC(s)
	if !math.IsInf(rep.RelDist, 1) || rep.Frel != 0 {
		t.Errorf("duplicate group keys must zero relevance: %+v", rep)
	}
}

func TestRCGroupByMinMaxRelevance(t *testing.T) {
	ev := newEval(t, hotelsByCity(query.AggMin))
	// Exact min prices: NYC 90, Chicago 80, Boston 200.
	// An answer (NYC, 99) is a real (city, price) pair: relevance via Q'.
	s := aggAnswers(100, [2]any{"NYC", 99.0}, [2]any{"Chicago", 80.0}, [2]any{"Boston", 200.0})
	rep := ev.RC(s)
	if rep.RelDist != 0 {
		t.Errorf("RelDist = %g, want 0 (actual tuples of Q')", rep.RelDist)
	}
	// Coverage: NYC min is 90 vs answered 99 -> 0.09 on scale 100.
	if math.Abs(rep.CovDist-0.09) > 1e-9 {
		t.Errorf("CovDist = %g, want 0.09", rep.CovDist)
	}
	// A fabricated (NYC, 55) pair is not in Q' and scores worse.
	s2 := aggAnswers(100, [2]any{"NYC", 55.0}, [2]any{"Chicago", 80.0}, [2]any{"Boston", 200.0})
	rep2 := ev.RC(s2)
	if rep2.RelDist <= 0 {
		t.Errorf("fabricated min: RelDist = %g, want > 0", rep2.RelDist)
	}
}

func TestRCGroupByExactPerfect(t *testing.T) {
	for _, agg := range []query.AggKind{query.AggCount, query.AggSum, query.AggAvg, query.AggMin, query.AggMax} {
		ev := newEval(t, hotelsByCity(agg))
		rep := ev.RC(ev.Exact)
		if rep.Accuracy != 1 {
			t.Errorf("%v: RC(exact) = %+v, want 1", agg, rep)
		}
	}
}

func TestEvaluatorErrors(t *testing.T) {
	db := testDB(t)
	if _, err := NewEvaluator(db, &query.SPC{Atoms: []query.Atom{{Rel: "nope"}}}); err == nil {
		t.Error("invalid query must fail")
	}
}
