// Package accuracy implements the paper's accuracy measures: the RC-measure
// (§3) — relevance and coverage under query relaxation — plus the MAC
// measure of [Ioannidis & Poosala, VLDB'99] and the classical F-measure,
// which the evaluation (§8) compares against.
//
// The relevance distance δrel(Q, D, s) = min_r max(r, min_{t∈Qr(D)} d(s,t))
// is computed exactly by enumerating the candidate space of the relaxed
// queries: query.EvaluateTracked returns every tuple that enters Qr(D) at
// some finite range r together with that minimal range, so
// δrel(s) = min over candidates t of max(enter(t), d(s, t)).
// Predicates on unbounded (trivial-distance) attributes can never be
// relaxed, which keeps the candidate space computable with ordinary joins.
package accuracy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Report carries the RC-measure of one answer set.
type Report struct {
	// Accuracy = min(Frel, Fcov), the paper's accuracy(S, Q, D).
	Accuracy float64
	// Frel and Fcov are the relevance and coverage ratios.
	Frel, Fcov float64
	// RelDist and CovDist are the worst relevance and coverage distances
	// behind the ratios.
	RelDist, CovDist float64
}

// Evaluator measures answer sets for one query on one database, computing
// the exact answers and the relaxation candidate space once.
type Evaluator struct {
	db    *relation.Database
	expr  query.Expr
	Exact *relation.Relation

	outAttrs []relation.Attribute
	// relevance candidate space
	candidates *relation.Relation
	enter      []float64
	// distance attrs for relevance comparison (may be a prefix of the
	// output schema for sum/count/avg group-bys)
	relAttrs []relation.Attribute
	relProj  []int // projection of an answer tuple for relevance matching
	groupBy  *query.GroupBy
}

// NewEvaluator computes the exact answers Q(D) and the relaxation candidate
// space for the query.
func NewEvaluator(db *relation.Database, e query.Expr) (*Evaluator, error) {
	ev := &Evaluator{db: db, expr: e}
	outSchema, err := query.OutputSchema(e, db)
	if err != nil {
		return nil, err
	}
	ev.outAttrs = outSchema.Attrs

	if g, ok := e.(*query.GroupBy); ok {
		ev.groupBy = g
		ev.Exact, err = query.Evaluate(db, e)
		if err != nil {
			return nil, err
		}
		return ev, ev.prepareGroupByCandidates(g)
	}

	ev.Exact, err = query.EvaluateSet(db, e)
	if err != nil {
		return nil, err
	}
	ev.candidates, ev.enter, err = query.EvaluateTracked(db, e)
	if err != nil {
		return nil, err
	}
	ev.relAttrs = ev.outAttrs
	ev.relProj = identity(len(ev.outAttrs))
	return ev, nil
}

// prepareGroupByCandidates builds the relevance candidate space per §3.2:
// for min/max, candidates are the relaxed answers of Q' projected to
// (X, V); for sum/count/avg, the relaxed answers of πX(Q').
func (ev *Evaluator) prepareGroupByCandidates(g *query.GroupBy) error {
	inRel, inEnter, err := query.EvaluateTracked(ev.db, g.In)
	if err != nil {
		return err
	}
	keyIdx := make([]int, len(g.Keys))
	for i, k := range g.Keys {
		j, ok := inRel.Schema.Index(k.Name())
		if !ok {
			return fmt.Errorf("accuracy: group-by key %s missing from child output", k)
		}
		keyIdx[i] = j
	}
	var proj []int
	switch g.Agg {
	case query.AggMin, query.AggMax:
		onIdx, ok := inRel.Schema.Index(g.On.Name())
		if !ok {
			return fmt.Errorf("accuracy: aggregate column %s missing from child output", g.On)
		}
		proj = append(append([]int{}, keyIdx...), onIdx)
		ev.relAttrs = ev.outAttrs // keys + agg value, comparable directly
		ev.relProj = identity(len(ev.outAttrs))
	default: // sum, count, avg: relevance looks at the keys only
		proj = keyIdx
		ev.relAttrs = ev.outAttrs[:len(g.Keys)]
		ev.relProj = identity(len(g.Keys))
	}
	// Project and dedupe keeping the minimal entry range.
	pos := map[string]int{}
	out := relation.NewRelation(relation.MustSchema("cand", projAttrs(inRel.Schema.Attrs, proj)...))
	var enters []float64
	for i, t := range inRel.Tuples {
		pt := t.Project(proj)
		k := pt.Key()
		if j, ok := pos[k]; ok {
			if inEnter[i] < enters[j] {
				enters[j] = inEnter[i]
			}
			continue
		}
		pos[k] = len(enters)
		out.Tuples = append(out.Tuples, pt)
		enters = append(enters, inEnter[i])
	}
	ev.candidates, ev.enter = out, enters
	return nil
}

func projAttrs(attrs []relation.Attribute, idx []int) []relation.Attribute {
	out := make([]relation.Attribute, len(idx))
	for i, j := range idx {
		a := attrs[j]
		a.Name = fmt.Sprintf("c%d", i) // names are irrelevant for distances
		out[i] = a
	}
	return out
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RC computes the RC-measure of the answer set S (§3.1):
//
//	Fcov = 1/(1 + max_t∈Q(D) δcov(Q,S,t)),
//	Frel = 1/(1 + max_s∈S δrel(Q,D,s)),
//	accuracy = min(Frel, Fcov),
//
// with Fcov = 1 when Q(D) = ∅, and accuracy = 0 when S = ∅ ≠ Q(D).
func (ev *Evaluator) RC(s *relation.Relation) Report {
	set := s.Distinct()
	rep := Report{}

	// Coverage.
	switch {
	case ev.Exact.Len() == 0:
		rep.Fcov, rep.CovDist = 1, 0
	case set.Len() == 0:
		rep.Fcov, rep.CovDist = 0, math.Inf(1)
	default:
		worst := 0.0
		for _, t := range ev.Exact.Tuples {
			best := math.Inf(1)
			for _, st := range set.Tuples {
				if d := relation.TupleDistance(ev.outAttrs, st, t); d < best {
					best = d
				}
			}
			if best > worst {
				worst = best
			}
		}
		rep.CovDist = worst
		rep.Fcov = 1 / (1 + worst)
	}

	// Relevance.
	worst := 0.0
	dupKeys := ev.duplicatedKeys(set)
	for _, st := range set.Tuples {
		d := ev.relDist(st, dupKeys)
		if d > worst {
			worst = d
		}
	}
	rep.RelDist = worst
	rep.Frel = 1 / (1 + worst)

	rep.Accuracy = math.Min(rep.Frel, rep.Fcov)
	return rep
}

// duplicatedKeys finds group-by key values occurring more than once in S;
// §3.2 assigns such answers relevance distance +inf (group-by semantics).
func (ev *Evaluator) duplicatedKeys(set *relation.Relation) map[string]bool {
	if ev.groupBy == nil {
		return nil
	}
	nKeys := len(ev.groupBy.Keys)
	count := map[string]int{}
	for _, t := range set.Tuples {
		count[t[:nKeys].Key()]++
	}
	dup := map[string]bool{}
	for k, n := range count {
		if n > 1 {
			dup[k] = true
		}
	}
	return dup
}

// relDist computes δrel(Q, D, s).
func (ev *Evaluator) relDist(s relation.Tuple, dupKeys map[string]bool) float64 {
	if ev.groupBy != nil {
		nKeys := len(ev.groupBy.Keys)
		if dupKeys[s[:nKeys].Key()] {
			return math.Inf(1)
		}
	}
	probe := s.Project(ev.relProj)
	best := math.Inf(1)
	for i, t := range ev.candidates.Tuples {
		d := relation.TupleDistance(ev.relAttrs, probe, t)
		v := math.Max(ev.enter[i], d)
		if v < best {
			best = v
		}
	}
	return best
}

// MAC computes a normalised Match-And-Compare accuracy in [0, 1] following
// [27]: answers and exact answers are greedily matched by tuple distance;
// the MAC distance averages the matched distances (capped at 1) plus a unit
// penalty per unmatched tuple on either side, and accuracy is 1 − distance.
func (ev *Evaluator) MAC(s *relation.Relation) float64 {
	set := s.Distinct()
	n, m := set.Len(), ev.Exact.Len()
	if n == 0 && m == 0 {
		return 1
	}
	if n == 0 || m == 0 {
		return 0
	}
	type pair struct {
		d    float64
		i, j int
	}
	var pairs []pair
	for i, st := range set.Tuples {
		for j, t := range ev.Exact.Tuples {
			d := relation.TupleDistance(ev.outAttrs, st, t)
			if d > 1 {
				d = 1
			}
			pairs = append(pairs, pair{d, i, j})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })
	usedS := make([]bool, n)
	usedE := make([]bool, m)
	total, matched := 0.0, 0
	for _, p := range pairs {
		if usedS[p.i] || usedE[p.j] {
			continue
		}
		usedS[p.i], usedE[p.j] = true, true
		total += p.d
		matched++
	}
	unmatched := (n - matched) + (m - matched)
	denom := float64(matched + unmatched)
	dist := (total + float64(unmatched)) / denom
	return 1 - dist
}

// FMeasure computes the classical F-measure of S against the exact answers
// (exact tuple membership; Example 2 shows why this is too brittle for
// resource-bounded approximation).
func (ev *Evaluator) FMeasure(s *relation.Relation) float64 {
	set := s.Distinct()
	if set.Len() == 0 || ev.Exact.Len() == 0 {
		if set.Len() == 0 && ev.Exact.Len() == 0 {
			return 1
		}
		return 0
	}
	exactKeys := map[string]bool{}
	for _, t := range ev.Exact.Tuples {
		exactKeys[t.Key()] = true
	}
	inter := 0
	for _, t := range set.Tuples {
		if exactKeys[t.Key()] {
			inter++
		}
	}
	if inter == 0 {
		return 0
	}
	precs := float64(inter) / float64(set.Len())
	recall := float64(inter) / float64(ev.Exact.Len())
	return 2 * precs * recall / (precs + recall)
}
