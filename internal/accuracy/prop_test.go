package accuracy

// Property tests for the RC oracle over the randomized corpus: the audit
// subsystem (internal/etaaudit) trusts this package to measure realised
// accuracy, so the measure itself must satisfy its defining properties on
// arbitrary queries and answer sets — not just the hand-built examples of
// accuracy_test.go.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fixture"
	"repro/internal/relation"
)

// TestRCPropertiesOverCorpus checks, for every corpus query answered by
// the real system at its case α:
//
//  1. Range: Accuracy, Frel and Fcov all lie in [0, 1].
//  2. Perfection: RC of the exact answer set is 1 in every component.
//  3. Monotonicity under row removal from the reported answer: coverage
//     (Fcov) never increases and relevance (Frel) never decreases as rows
//     are removed — fewer reported rows can only cover Q(D) worse, and
//     the worst-row relevance max can only shrink. (Accuracy itself, the
//     min of the two, is deliberately not monotone.)
func TestRCPropertiesOverCorpus(t *testing.T) {
	const cases = 80
	db := fixture.Example1(7, 120, 80)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		t.Fatal(err)
	}
	s := core.New(db, as)
	rng := rand.New(rand.NewSource(11))

	checked := 0
	for ci, c := range corpus.Cases(42, cases) {
		ans, _, err := s.Answer(c.Query, c.Alpha)
		if err != nil {
			if strings.Contains(err.Error(), "exceeds limit") {
				continue // relaxed-join blowup guard; nothing to measure
			}
			t.Fatalf("case %d: %v", ci, err)
		}
		ev, err := NewEvaluator(db, c.Query)
		if err != nil {
			t.Fatalf("case %d: evaluator: %v", ci, err)
		}
		checked++

		if rep := ev.RC(ev.Exact); rep.Accuracy != 1 || rep.Frel != 1 || rep.Fcov != 1 {
			t.Errorf("case %d: RC(exact) = %+v, want all components 1", ci, rep)
		}

		rep := ev.RC(ans.Rel)
		checkRange(t, ci, "system answer", rep)

		// Remove up to five random rows, re-measuring after each removal.
		cur := &relation.Relation{Schema: ans.Rel.Schema, Tuples: append([]relation.Tuple(nil), ans.Rel.Tuples...)}
		prev := rep
		for step := 0; step < 5 && cur.Len() > 0; step++ {
			i := rng.Intn(cur.Len())
			cur.Tuples = append(cur.Tuples[:i], cur.Tuples[i+1:]...)
			r := ev.RC(cur)
			checkRange(t, ci, "after removal", r)
			if r.Fcov > prev.Fcov+1e-12 {
				t.Errorf("case %d: Fcov rose %.6f -> %.6f after removing a row", ci, prev.Fcov, r.Fcov)
			}
			if r.Frel < prev.Frel-1e-12 {
				t.Errorf("case %d: Frel fell %.6f -> %.6f after removing a row", ci, prev.Frel, r.Frel)
			}
			prev = r
		}
	}
	if checked < cases/2 {
		t.Fatalf("only %d/%d corpus cases were measurable", checked, cases)
	}
	t.Logf("%d cases checked", checked)
}

// checkRange asserts every RC component lies in [0, 1].
func checkRange(t *testing.T, ci int, what string, rep Report) {
	t.Helper()
	for _, v := range []struct {
		name string
		val  float64
	}{{"Accuracy", rep.Accuracy}, {"Frel", rep.Frel}, {"Fcov", rep.Fcov}} {
		if v.val < 0 || v.val > 1 {
			t.Errorf("case %d (%s): %s = %g outside [0,1]", ci, what, v.name, v.val)
		}
	}
}
