package etaaudit

import (
	"strings"
	"testing"
)

// TestAuditSweep is the η-audit gate: the configured sweep must report
// zero violations. In -short mode (PR CI) it runs the reduced ShortConfig
// budget; the full DefaultConfig sweep — the complete corpus plus both
// workload datasets across the whole α grid — runs otherwise.
func TestAuditSweep(t *testing.T) {
	cfg := DefaultConfig()
	if testing.Short() {
		cfg = ShortConfig()
	}
	rep, err := Run(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked == 0 {
		t.Fatal("audit checked nothing")
	}
	for _, v := range rep.Violations {
		t.Errorf("eta violation:\n%s", v)
	}
	for _, sw := range rep.Sweeps {
		t.Logf("%s: %d queries, %d checked, %d skipped in %v", sw.Dataset, sw.Queries, sw.Checked, sw.Skipped, sw.Elapsed)
	}
}

// TestAuditOnlyFilter checks the reproduction path: an Only filter of
// "dataset:index" must narrow the sweep to exactly that query, and the
// violation repro strings must reference the same filter syntax.
func TestAuditOnlyFilter(t *testing.T) {
	cfg := ShortConfig()
	cfg.Datasets = []string{"corpus"}
	cfg.Alphas = []float64{0.1}
	cfg.Only = "corpus:3"
	rep, err := Run(t.Context(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Sweeps[0].Queries; got != 1 {
		t.Fatalf("Only filter audited %d queries, want 1", got)
	}
	if repro := reproCommand(cfg, "corpus", 3, 0.1); !strings.Contains(repro, "-audit-only corpus:3") ||
		!strings.Contains(repro, "-audit-corpus-seed 42") {
		t.Fatalf("repro command lacks the filter or seed: %s", repro)
	}
}

// TestAuditBadConfig rejects unrunnable configurations.
func TestAuditBadConfig(t *testing.T) {
	if _, err := Run(t.Context(), Config{}); err == nil {
		t.Fatal("empty config should fail")
	}
	cfg := DefaultConfig()
	cfg.Datasets = []string{"nope"}
	if _, err := Run(t.Context(), cfg); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}
