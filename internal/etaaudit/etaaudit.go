// Package etaaudit is the exact-oracle differential harness for the
// system's central contract: the deterministic RC-accuracy lower bound η
// (Theorems 5/6). It replays the canonical randomized corpus and generated
// TPCH/TFACC workloads across an α grid, computes the realised RC accuracy
// of every answer against the exact oracle (internal/accuracy), and
// reports every case where accuracy < η — with the offending bound trace
// and a one-line reproduction command attached.
//
// The audit exists because a bound that is only believed is not a bound:
// the PR-6 q1 escape (docs/KNOWN_ISSUES.md) survived four PRs of
// conventional testing. Every seed the audit consumes is part of its
// Config and echoed into the Report, so any future violation is
// reproducible from its own error message.
package etaaudit

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fixture"
	"repro/internal/query"
	"repro/internal/workload"
)

// Config pins every input of one audit sweep. The zero value is not
// runnable; start from DefaultConfig or ShortConfig.
type Config struct {
	// Datasets selects the sweeps to run, in order: "corpus" (the
	// 200-case randomized corpus over the Example 1 fixture), "edge" (the
	// deterministic edge-shape corpus over its adversarial database), and
	// "tpch" / "tfacc" (generated workloads over the synthetic datasets).
	Datasets []string
	// Alphas is the resource-ratio grid every query is answered at.
	Alphas []float64
	// CorpusSeed and CorpusCases parameterize the "corpus" sweep.
	CorpusSeed  int64
	CorpusCases int
	// FixtureSeed, FixtureN and FixtureM parameterize the Example 1
	// fixture instance the corpus runs against.
	FixtureSeed int64
	FixtureN    int
	FixtureM    int
	// DatasetSeed seeds dataset generation; TPCHScale and TFACCScale are
	// the scale factors for the "tpch" and "tfacc" sweeps.
	DatasetSeed int64
	TPCHScale   int
	TFACCScale  int
	// WorkloadQueries and WorkloadSeed parameterize the generated query
	// workload of the "tpch"/"tfacc" sweeps.
	WorkloadQueries int
	WorkloadSeed    int64
	// Only, when non-empty, restricts the audit to a single case written
	// as "dataset:index" (e.g. "tpch:3") — the reproduction filter the
	// violation messages reference.
	Only string
}

// DefaultConfig is the full audit: the whole corpus plus 14-query TPCH and
// TFACC workloads, each swept over α ∈ {0.01, 0.05, 0.3}. The seeds match
// the historical soundness tests, so the sweep subsumes them.
func DefaultConfig() Config {
	return Config{
		Datasets:        []string{"corpus", "edge", "tpch", "tfacc"},
		Alphas:          []float64{0.01, 0.05, 0.3},
		CorpusSeed:      corpus.DefaultSeed,
		CorpusCases:     corpus.DefaultCases,
		FixtureSeed:     7,
		FixtureN:        120,
		FixtureM:        80,
		DatasetSeed:     2017,
		TPCHScale:       2,
		TFACCScale:      1,
		WorkloadQueries: 14,
		WorkloadSeed:    99,
	}
}

// ShortConfig is the PR-CI budget: a quarter of the corpus and a TPCH-only
// workload sweep over two α values. Same seeds, strictly a subset of the
// full audit's coverage.
func ShortConfig() Config {
	cfg := DefaultConfig()
	cfg.Datasets = []string{"corpus", "edge", "tpch"}
	cfg.Alphas = []float64{0.01, 0.3}
	cfg.CorpusCases = 50
	cfg.WorkloadQueries = 6
	return cfg
}

// Violation is one audited case whose realised RC accuracy fell below the
// reported η — the contract breach the audit exists to catch.
type Violation struct {
	// Dataset and QueryIndex locate the case within the sweep; Query is
	// the rendered query text.
	Dataset    string
	QueryIndex int
	Query      string
	// Alpha is the resource ratio the case ran at.
	Alpha float64
	// Eta is the reported bound; Accuracy, Frel and Fcov are the realised
	// oracle measurements that contradict it.
	Eta, Accuracy, Frel, Fcov float64
	// Trace is the rendered bound derivation that produced Eta.
	Trace string
	// Repro is a one-line command that replays exactly this case.
	Repro string
}

// String formats the violation the way the audit's consumers print it.
func (v Violation) String() string {
	return fmt.Sprintf("%s q%d alpha=%g: accuracy %.4f < eta %.4f (Frel=%.4f Fcov=%.4f)\n  query: %s\n  repro: %s\n  bound trace:\n%s",
		v.Dataset, v.QueryIndex, v.Alpha, v.Accuracy, v.Eta, v.Frel, v.Fcov, v.Query, v.Repro, indent(v.Trace))
}

// indent prefixes every trace line for nested display.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n")
}

// Sweep is the outcome of one dataset's audit pass.
type Sweep struct {
	// Dataset names the pass ("corpus", "tpch", "tfacc").
	Dataset string
	// Queries is the number of distinct queries audited; Checked counts
	// (query, α) executions and Skipped counts queries the planner
	// deterministically rejects (the relaxed-join blowup guard).
	Queries, Checked, Skipped int
	// Elapsed is the pass's wall time (what beasbench reports).
	Elapsed time.Duration
}

// Report is a finished audit: the echoed configuration, per-dataset
// timings and every violation found.
type Report struct {
	// Config echoes the exact inputs, seeds included, so the report is
	// self-reproducing.
	Config Config
	// Sweeps are the per-dataset passes in execution order.
	Sweeps []Sweep
	// Checked is the total number of audited (query, α) executions.
	Checked int
	// Violations are the contract breaches, empty on a sound system.
	Violations []Violation
}

// Run executes the configured audit. It returns an error only for
// infrastructure failures (bad config, dataset build errors, ctx
// cancellation); η violations are data, reported in Report.Violations.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Datasets) == 0 || len(cfg.Alphas) == 0 {
		return nil, fmt.Errorf("etaaudit: config selects no datasets or no alphas")
	}
	rep := &Report{Config: cfg}
	for _, name := range cfg.Datasets {
		var (
			sw  Sweep
			err error
		)
		switch name {
		case "corpus":
			sw, err = runCorpus(ctx, cfg, rep)
		case "edge":
			sw, err = runEdge(ctx, cfg, rep)
		case "tpch", "tfacc":
			sw, err = runWorkload(ctx, cfg, rep, name)
		default:
			err = fmt.Errorf("etaaudit: unknown dataset %q", name)
		}
		if err != nil {
			return nil, err
		}
		rep.Sweeps = append(rep.Sweeps, sw)
		rep.Checked += sw.Checked
	}
	return rep, nil
}

// runCorpus audits the randomized corpus over the Example 1 fixture.
func runCorpus(ctx context.Context, cfg Config, rep *Report) (Sweep, error) {
	start := time.Now()
	db := fixture.Example1(cfg.FixtureSeed, cfg.FixtureN, cfg.FixtureM)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		return Sweep{}, fmt.Errorf("etaaudit: corpus fixture: %w", err)
	}
	s := core.New(db, as)
	sw := Sweep{Dataset: "corpus"}
	for ci, c := range corpus.Cases(cfg.CorpusSeed, cfg.CorpusCases) {
		if skipCase(cfg, "corpus", ci) {
			continue
		}
		checked, skipped, err := auditQuery(ctx, cfg, rep, s, "corpus", ci, c.Query)
		if err != nil {
			return Sweep{}, err
		}
		sw.Queries++
		sw.Checked += checked
		sw.Skipped += skipped
	}
	sw.Elapsed = time.Since(start)
	return sw, nil
}

// runEdge audits the deterministic edge-shape corpus (results emptied by
// EXCEPT, single-tuple relations, 64+-wide duplicate join keys) over its
// adversarial Example 1 instance.
func runEdge(ctx context.Context, cfg Config, rep *Report) (Sweep, error) {
	start := time.Now()
	db := corpus.EdgeDB()
	as, err := fixture.SchemaA0(db)
	if err != nil {
		return Sweep{}, fmt.Errorf("etaaudit: edge fixture: %w", err)
	}
	s := core.New(db, as)
	sw := Sweep{Dataset: "edge"}
	for ci, c := range corpus.EdgeCases() {
		if skipCase(cfg, "edge", ci) {
			continue
		}
		checked, skipped, err := auditQuery(ctx, cfg, rep, s, "edge", ci, c.Query)
		if err != nil {
			return Sweep{}, err
		}
		sw.Queries++
		sw.Checked += checked
		sw.Skipped += skipped
	}
	sw.Elapsed = time.Since(start)
	return sw, nil
}

// runWorkload audits a generated workload over one synthetic dataset.
func runWorkload(ctx context.Context, cfg Config, rep *Report, name string) (Sweep, error) {
	start := time.Now()
	var d *workload.Dataset
	switch name {
	case "tpch":
		d = workload.TPCH(cfg.TPCHScale, cfg.DatasetSeed)
	case "tfacc":
		d = workload.TFACC(cfg.TFACCScale, cfg.DatasetSeed)
	}
	as, err := d.AccessSchema()
	if err != nil {
		return Sweep{}, fmt.Errorf("etaaudit: %s schema: %w", name, err)
	}
	s := core.New(d.DB, as)
	qs, err := d.Workload(cfg.WorkloadQueries, cfg.WorkloadSeed)
	if err != nil {
		return Sweep{}, fmt.Errorf("etaaudit: %s workload: %w", name, err)
	}
	sw := Sweep{Dataset: name}
	for qi, q := range qs {
		if skipCase(cfg, name, qi) {
			continue
		}
		checked, skipped, err := auditQuery(ctx, cfg, rep, s, name, qi, q)
		if err != nil {
			return Sweep{}, err
		}
		sw.Queries++
		sw.Checked += checked
		sw.Skipped += skipped
	}
	sw.Elapsed = time.Since(start)
	return sw, nil
}

// auditQuery answers one query across the α grid and checks every answer
// against the exact oracle. The oracle is built lazily so queries the
// planner rejects outright never pay for exact evaluation.
func auditQuery(ctx context.Context, cfg Config, rep *Report, s *core.Scheme, dataset string, qi int, q query.Expr) (checked, skipped int, err error) {
	var ev *accuracy.Evaluator
	for _, alpha := range cfg.Alphas {
		if err := ctx.Err(); err != nil {
			return checked, skipped, err
		}
		ans, _, err := s.AnswerContext(ctx, q, core.ExecOptions{Alpha: alpha, ExplainEta: true})
		if err != nil {
			if strings.Contains(err.Error(), "exceeds limit") {
				// The relaxed-join blowup guard rejects the plan
				// deterministically; nothing was answered, nothing to audit.
				skipped++
				continue
			}
			return checked, skipped, fmt.Errorf("etaaudit: %s q%d alpha=%g: %w", dataset, qi, alpha, err)
		}
		if ev == nil {
			ev, err = accuracy.NewEvaluator(s.DB(), q)
			if err != nil {
				return checked, skipped, fmt.Errorf("etaaudit: %s q%d oracle: %w", dataset, qi, err)
			}
		}
		checked++
		r := ev.RC(ans.Rel)
		if r.Accuracy+1e-9 < ans.Eta {
			rep.Violations = append(rep.Violations, Violation{
				Dataset:    dataset,
				QueryIndex: qi,
				Query:      query.Render(q),
				Alpha:      alpha,
				Eta:        ans.Eta,
				Accuracy:   r.Accuracy,
				Frel:       r.Frel,
				Fcov:       r.Fcov,
				Trace:      ans.Trace.String(),
				Repro:      reproCommand(cfg, dataset, qi, alpha),
			})
		}
	}
	return checked, skipped, nil
}

// skipCase applies the Only filter.
func skipCase(cfg Config, dataset string, qi int) bool {
	return cfg.Only != "" && cfg.Only != fmt.Sprintf("%s:%d", dataset, qi)
}

// reproCommand builds the one-line reproduction for a violated case: the
// beasbench audit entry point narrowed to the single (dataset, query, α)
// triple, with every seed the sweep consumed spelled out.
func reproCommand(cfg Config, dataset string, qi int, alpha float64) string {
	cmd := fmt.Sprintf("go run ./cmd/beasbench -etaaudit -audit-datasets %s -audit-only %s:%d -audit-alphas %g",
		dataset, dataset, qi, alpha)
	if dataset == "corpus" {
		return cmd + fmt.Sprintf(" -audit-corpus-seed %d -audit-corpus-cases %d -audit-fixture-seed %d",
			cfg.CorpusSeed, cfg.CorpusCases, cfg.FixtureSeed)
	}
	scale := cfg.TPCHScale
	if dataset == "tfacc" {
		scale = cfg.TFACCScale
	}
	return cmd + fmt.Sprintf(" -audit-scale %d -audit-dataset-seed %d -audit-workload-queries %d -audit-workload-seed %d",
		scale, cfg.DatasetSeed, cfg.WorkloadQueries, cfg.WorkloadSeed)
}
