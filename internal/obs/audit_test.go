package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// wedgedWriter blocks every Write until released, simulating a stalled
// audit sink (full disk, hung pipe consumer).
type wedgedWriter struct {
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *wedgedWriter) Write(p []byte) (int, error) {
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *wedgedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestAuditDropsUnderWedgedWriter wedges the audit sink while the serving
// path keeps recording: Record must never block, the overflow must be
// counted in Dropped, and once the sink recovers the accepted backlog must
// drain as valid NDJSON with Written + Dropped accounting for every record.
func TestAuditDropsUnderWedgedWriter(t *testing.T) {
	const n, ring = 100, 4
	w := &wedgedWriter{release: make(chan struct{})}
	a := NewAuditLog(w, AuditFilter{}, ring)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			a.Record(AuditRecord{Event: "query", SQLDigest: "deadbeefdeadbeef", Status: 200})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Record blocked on a wedged writer")
	}
	if a.Dropped() == 0 {
		t.Fatal("wedged writer dropped nothing; ring backpressure not exercised")
	}
	// The writer holds at most one record mid-Write plus a full ring.
	if got := a.Dropped(); got < n-ring-2 {
		t.Errorf("Dropped() = %d, want >= %d (ring %d)", got, n-ring-2, ring)
	}

	close(w.release) // sink recovers; Close drains the accepted backlog
	if err := a.Close(); err != nil {
		t.Fatalf("Close after recovery: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(w.String(), "\n"), "\n")
	if uint64(len(lines)) != a.Written() {
		t.Errorf("sink holds %d lines, Written() = %d", len(lines), a.Written())
	}
	if a.Written()+a.Dropped() != n {
		t.Errorf("Written %d + Dropped %d != %d recorded", a.Written(), a.Dropped(), n)
	}
	for i, line := range lines {
		var rec AuditRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if rec.Event != "query" || rec.SQLDigest != "deadbeefdeadbeef" {
			t.Fatalf("line %d round-tripped wrong: %+v", i, rec)
		}
	}
}

// TestAuditCloseBoundedByWedgedWriter: a sink that never recovers must not
// wedge shutdown — Close returns an error within its drain deadline.
func TestAuditCloseBoundedByWedgedWriter(t *testing.T) {
	w := &wedgedWriter{release: make(chan struct{})}
	a := NewAuditLog(w, AuditFilter{}, 2)
	a.Record(AuditRecord{Event: "query"})
	start := time.Now()
	if err := a.Close(); err == nil {
		t.Fatal("Close on a permanently wedged writer returned nil")
	}
	if d := time.Since(start); d > closeDrainTimeout+time.Second {
		t.Fatalf("Close took %v, want bounded by ~%v", d, closeDrainTimeout)
	}
	close(w.release) // unwedge so the goroutine exits
}
