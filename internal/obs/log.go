package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

// Log severities, lowest first.
const (
	// LevelDebug is development chatter.
	LevelDebug Level = iota
	// LevelInfo is normal operational events.
	LevelInfo
	// LevelWarn is degraded-but-serving conditions (brownout shifts,
	// WAL degradation, circuit openings).
	LevelWarn
	// LevelError is failures that lost work (panics, write errors).
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// Logger is a small leveled structured logger: each event is a message
// plus alternating key/value pairs, rendered either as one JSON object
// per line ("json") or a human-readable line ("text"). It replaces raw
// log.Printf in the serving path so panic stacks, WAL-degradation flips
// and brownout level shifts are machine-parseable events.
//
// A nil *Logger discards everything (all methods are nil-safe).
type Logger struct {
	mu   sync.Mutex
	w    io.Writer
	json bool
	min  Level
}

// NewLogger builds a logger writing to w in the given format ("text" or
// "json"; empty means text).
func NewLogger(w io.Writer, format string) (*Logger, error) {
	l := &Logger{w: w}
	switch format {
	case "", "text":
	case "json":
		l.json = true
	default:
		return nil, fmt.Errorf("log format %q (want text or json)", format)
	}
	return l, nil
}

// SetMinLevel drops events below min (default: everything passes).
func (l *Logger) SetMinLevel(min Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

// Logf is a Printf-shaped adapter logging at LevelInfo — it satisfies the
// legacy logf seams (persist.Options.Logf) so durability state
// transitions flow through the structured logger.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...))
}

func (l *Logger) log(lvl Level, msg string, kv ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if lvl < l.min || l.w == nil {
		return
	}
	now := time.Now().Format(time.RFC3339Nano)
	if l.json {
		obj := make(map[string]any, 3+len(kv)/2)
		obj["ts"] = now
		obj["level"] = lvl.String()
		obj["msg"] = msg
		for i := 0; i+1 < len(kv); i += 2 {
			k, ok := kv[i].(string)
			if !ok {
				k = fmt.Sprint(kv[i])
			}
			obj[k] = jsonable(kv[i+1])
		}
		line, err := json.Marshal(obj)
		if err != nil {
			line = []byte(fmt.Sprintf(`{"ts":%q,"level":%q,"msg":%q}`, now, lvl, msg))
		}
		_, _ = l.w.Write(append(line, '\n'))
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %-5s %s", now, strings.ToUpper(lvl.String()), msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	b.WriteByte('\n')
	_, _ = io.WriteString(l.w, b.String())
}

// jsonable coerces values JSON can't encode (errors, Stringers that would
// marshal to "{}") into strings.
func jsonable(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	default:
		return v
	}
}
