package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer instrument. Inc and Add
// are single atomic operations — safe for concurrent use, zero
// allocation. Callers keep the pointer returned by the registry; the
// lookup cost is paid once at construction, not per increment.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract to hold;
// this is not checked on the hot path).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter. Exposition counters are normally monotone;
// Reset exists for owners whose lifecycle legitimately restarts the count
// (plancache.Purge discards the cache and its effectiveness history), which
// scrapers treat like a process restart.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a settable signed integer instrument (level, queue depth,
// boolean state as 0/1).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetBool stores 1 for true, 0 for false.
func (g *Gauge) SetBool(b bool) {
	if b {
		g.v.Store(1)
	} else {
		g.v.Store(0)
	}
}

// Add adjusts the gauge by delta (may be negative) and returns the new
// value, so compare-and-release admission patterns read their own update.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution instrument. Observe is
// lock-free: a binary search over the (immutable) bucket bounds, one
// atomic bucket increment, one atomic count increment and a CAS loop for
// the float sum — no allocation.
type Histogram struct {
	initOnce sync.Once
	bounds   []float64 // upper bounds, ascending; +Inf implicit
	counts   []atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound >= v; the implicit +Inf bucket is
	// len(bounds).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets is the default latency bucket ladder in seconds:
// 100µs .. ~100s in powers of ~4.
var DurationBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144,
}

// metricKind is the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// String returns the kind's exposition TYPE keyword (computed gauges
// render as plain gauges).
func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labelled instance inside a family.
type series struct {
	labelVal string // empty for the unlabelled singleton
	counter  *Counter
	gauge    *Gauge
	fn       func() float64
	hist     *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	label   string // label name, empty for singleton families
	mu      sync.Mutex
	series  []*series
	byLabel map[string]*series
}

// adopt binds caller-owned instruments as the series for labelVal,
// replacing any auto-created ones. This is how components keep owning
// their counters (plan cache hits, WAL records, per-peer failures) while
// the registry renders them: /stats and /metrics then read the very same
// atomics, so the two surfaces cannot drift apart.
func (f *family) adopt(labelVal string, c *Counter, g *Gauge) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[labelVal]; ok {
		s.counter, s.gauge = c, g
		return
	}
	s := &series{labelVal: labelVal, counter: c, gauge: g}
	f.byLabel[labelVal] = s
	f.series = append(f.series, s)
}

func (f *family) get(labelVal string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[labelVal]; ok {
		return s
	}
	s := &series{labelVal: labelVal}
	switch f.kind {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = &Histogram{}
	}
	f.byLabel[labelVal] = s
	f.series = append(f.series, s)
	return s
}

// Registry is a set of metric families rendered in the Prometheus text
// exposition format. Instrument getters are get-or-create and idempotent;
// requesting an existing name with a conflicting kind, help or label
// panics (programmer error, caught by any test that touches the path).
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help string, kind metricKind, label string) *family {
	if !validName(name) || label != "" && !validName(label) {
		panic("obs: invalid metric name " + name + " / label " + label)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, label: label, byLabel: map[string]*series{}}
		r.fams[name] = f
		return f
	}
	if f.kind != kind || f.label != label {
		panic("obs: metric " + name + " re-registered with a different kind or label")
	}
	return f
}

// Counter returns the (single, unlabelled) counter of the named family,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, "").get("").counter
}

// Gauge returns the (single, unlabelled) gauge of the named family,
// creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, "").get("").gauge
}

// Histogram returns the (single, unlabelled) histogram of the named
// family with the given ascending upper bucket bounds (+Inf is implicit),
// creating it on first use. Later calls ignore the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	s := r.family(name, help, kindHistogram, "").get("")
	s.hist.init(bounds)
	return s.hist
}

func (h *Histogram) init(bounds []float64) {
	h.initOnce.Do(func() {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		h.bounds = b
		h.counts = make([]atomic.Uint64, len(b)+1)
	})
}

// RegisterCounter binds an existing caller-owned counter as the named
// (unlabelled) family — the adopt path for components that predate the
// registry or outlive any one server.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.family(name, help, kindCounter, "").adopt("", c, nil)
}

// RegisterGauge binds an existing caller-owned gauge as the named
// (unlabelled) family.
func (r *Registry) RegisterGauge(name, help string, g *Gauge) {
	r.family(name, help, kindGauge, "").adopt("", nil, g)
}

// RegisterCounterIn binds an existing counter as one labelled series of
// the named one-label counter family.
func (r *Registry) RegisterCounterIn(name, help, label, labelVal string, c *Counter) {
	r.family(name, help, kindCounter, label).adopt(labelVal, c, nil)
}

// RegisterGaugeIn binds an existing gauge as one labelled series of the
// named one-label gauge family.
func (r *Registry) RegisterGaugeIn(name, help, label, labelVal string, g *Gauge) {
	r.family(name, help, kindGauge, label).adopt(labelVal, nil, g)
}

// GaugeFunc registers a computed gauge: fn is evaluated at scrape time.
// Use it for values that are derived state (a p95 over a window, a
// circuit flag owned by a mutex) rather than maintained counts.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGaugeFunc, "").get("").fn = fn
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct{ f *family }

// With returns the counter for the given label value, creating it on
// first use. Hot paths should call With once and keep the pointer.
func (v CounterVec) With(labelVal string) *Counter { return v.f.get(labelVal).counter }

// CounterVec returns the named one-label counter family.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, kindCounter, label)}
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label value, creating it on first
// use.
func (v GaugeVec) With(labelVal string) *Gauge { return v.f.get(labelVal).gauge }

// GaugeVec returns the named one-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, kindGauge, label)}
}

// GaugeFuncVec registers one computed series of a one-label gauge family.
func (r *Registry) GaugeFuncVec(name, help, label, labelVal string, fn func() float64) {
	r.family(name, help, kindGaugeFunc, label).get(labelVal).fn = fn
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition
// format (text/plain; version=0.0.4), families sorted by name, series by
// label value.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		r.mu.RLock()
		f := r.fams[n]
		r.mu.RUnlock()
		f.mu.Lock()
		ser := make([]*series, len(f.series))
		copy(ser, f.series)
		f.mu.Unlock()
		sort.Slice(ser, func(i, j int) bool { return ser[i].labelVal < ser[j].labelVal })

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			lbl := ""
			if f.label != "" {
				lbl = `{` + f.label + `="` + escapeLabel(s.labelVal) + `"}`
			}
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, lbl, s.counter.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, lbl, s.gauge.Value())
			case kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, lbl, formatFloat(v))
			case kindHistogram:
				writeHistogram(&b, f.name, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count())
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
