package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a query trace tree. Every method is nil-safe:
// instrumentation sites call Child/Set*/End unconditionally and a nil
// span (tracing disabled) makes each a no-op costing one nil check, so
// the disabled path stays allocation-free.
//
// A span records wall time plus a small set of typed attributes — tuples
// accessed vs. budget granted, the resolution level served, the η
// contribution, shard/peer identity, retry and circuit state. Child spans
// may be opened concurrently (parallel leaves, scatter-gather shards,
// per-peer RPC fan-out); the child list is mutex-guarded.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	// Key is the attribute name.
	Key string
	// Val is the attribute value (int64, float64, string or bool).
	Val any
}

// Trace is a query-scoped span tree: a root span plus everything opened
// beneath it. The zero value is unusable; NewTrace starts the root.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Root returns the root span (nil on a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// End closes the root span.
func (t *Trace) End() { t.Root().End() }

// Child opens a new child span under s, started now. On a nil span it
// returns nil, so disabled call sites compose for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent; a second End
// (e.g. a defer racing an explicit close) keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, v})
	s.mu.Unlock()
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, v})
	s.mu.Unlock()
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, v})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's closed duration (0 while open or on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Ended reports whether the span has been closed.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// Children returns a snapshot of the span's children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.mu.Unlock()
	return out
}

// Attrs returns a snapshot of the span's attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	s.mu.Unlock()
	return out
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (nil when absent). A test and rendering helper.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Unclosed counts spans in the subtree that were opened but never ended —
// zero on a balanced trace. The adversity tests (cancellation, panic,
// killed peer) assert on it.
func (s *Span) Unclosed() int {
	if s == nil {
		return 0
	}
	n := 0
	if !s.Ended() {
		n = 1
	}
	for _, c := range s.Children() {
		n += c.Unclosed()
	}
	return n
}

// Count returns the total number of spans in the subtree.
func (s *Span) Count() int {
	if s == nil {
		return 0
	}
	n := 1
	for _, c := range s.Children() {
		n += c.Count()
	}
	return n
}

// String renders the trace as an indented tree, one span per line:
// name, duration, then key=value attributes in insertion order.
func (t *Trace) String() string {
	if t == nil || t.root == nil {
		return ""
	}
	var b strings.Builder
	t.root.render(&b, 0)
	return b.String()
}

func (s *Span) render(b *strings.Builder, depth int) {
	s.mu.Lock()
	name, dur, ended := s.name, s.dur, s.ended
	attrs := make([]Attr, len(s.attrs))
	copy(attrs, s.attrs)
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(name)
	if ended {
		fmt.Fprintf(b, " %v", dur.Round(time.Microsecond))
	} else {
		b.WriteString(" (open)")
	}
	for _, a := range attrs {
		switch v := a.Val.(type) {
		case float64:
			fmt.Fprintf(b, " %s=%.4g", a.Key, v)
		default:
			fmt.Fprintf(b, " %s=%v", a.Key, v)
		}
	}
	b.WriteByte('\n')
	// Children render in start order so concurrent fan-outs read stably.
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].start.Before(kids[j].start) })
	for _, c := range kids {
		c.render(b, depth+1)
	}
}

// SpanJSON is the wire shape of one span for the debug=trace response.
type SpanJSON struct {
	// Name is the span name.
	Name string `json:"name"`
	// Micros is the span duration in microseconds (0 while open).
	Micros int64 `json:"micros"`
	// Attrs holds the span's attributes (omitted when empty).
	Attrs map[string]any `json:"attrs,omitempty"`
	// Children holds the nested spans (omitted when empty).
	Children []SpanJSON `json:"children,omitempty"`
}

// JSON converts the trace into its wire shape (zero value on nil).
func (t *Trace) JSON() SpanJSON {
	if t == nil || t.root == nil {
		return SpanJSON{}
	}
	return t.root.json()
}

func (s *Span) json() SpanJSON {
	out := SpanJSON{Name: s.Name(), Micros: s.Duration().Microseconds()}
	attrs := s.Attrs()
	if len(attrs) > 0 {
		out.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	kids := s.Children()
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].start.Before(kids[j].start) })
	for _, c := range kids {
		out.Children = append(out.Children, c.json())
	}
	return out
}

// ctxKey carries the active span on a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span; a nil span
// returns ctx unchanged, so the disabled path adds no context layer.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom returns the active span carried on ctx, or nil when tracing is
// disabled — the single lookup instrumentation sites pay per call.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
