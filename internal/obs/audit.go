package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// AuditRecord is one per-query audit event, serialised as a single NDJSON
// line. Field names are the stable audit schema (see ARCHITECTURE.md §14);
// budget_spent and eta are copied verbatim from the Answer the client
// received, so a record can be checked against the response byte for byte.
type AuditRecord struct {
	// Time is the event timestamp, RFC3339Nano.
	Time string `json:"ts"`
	// Event is the serving surface: "query", "stream" or "batch".
	Event string `json:"event"`
	// Tag is the client-supplied workload tag (empty when untagged).
	Tag string `json:"tag,omitempty"`
	// SQLDigest is the first 16 hex chars of SHA-256 over the SQL text.
	SQLDigest string `json:"sql_digest"`
	// AlphaRequested is the α the client asked for.
	AlphaRequested float64 `json:"alpha_requested"`
	// AlphaEffective is the α actually served (lower under brownout).
	AlphaEffective float64 `json:"alpha_effective"`
	// BudgetGranted is the tuple budget the plan was given.
	BudgetGranted int `json:"budget_granted"`
	// BudgetSpent is the tuples the execution actually accessed.
	BudgetSpent int `json:"budget_spent"`
	// Eta is the reported accuracy lower bound.
	Eta float64 `json:"eta"`
	// Exact reports a boundedly-evaluable (exact) answer.
	Exact bool `json:"exact"`
	// Truncated reports that some fetch hit its budget mid-list.
	Truncated bool `json:"truncated"`
	// Degraded reports that brownout shrank the effective α.
	Degraded bool `json:"degraded"`
	// CacheHit reports the plan came from the plan cache.
	CacheHit bool `json:"cache_hit"`
	// PlanClass is the plan's query class (empty on error).
	PlanClass string `json:"plan_class,omitempty"`
	// BrownoutLevel is the admission level the query was served at.
	BrownoutLevel int `json:"brownout_level"`
	// RemoteFetches counts cluster RPC fetches issued for this query era
	// (0 when single-node).
	RemoteFetches int64 `json:"remote_fetches,omitempty"`
	// LatencyMicros is the end-to-end serving latency in microseconds.
	LatencyMicros int64 `json:"latency_us"`
	// Status is the HTTP status returned to the client.
	Status int `json:"status"`
	// Err is the error message on a failed query (empty on success).
	Err string `json:"err,omitempty"`
}

// SQLDigest returns the audit digest of a SQL text: the first 16 hex
// characters of its SHA-256 — stable, collision-resistant enough for
// grouping, and free of the raw query text (which may embed user data).
func SQLDigest(sql string) string {
	sum := sha256.Sum256([]byte(sql))
	return hex.EncodeToString(sum[:8])
}

// AuditFilter decides which audit events are recorded: an event-name
// allowlist plus a tag allowlist, in the spirit of the couchbase audit
// API's enabled-event/disabled-user semantics. An empty list allows
// everything on that axis.
type AuditFilter struct {
	events map[string]bool
	tags   map[string]bool
}

// ParseAuditFilter parses a filter spec of semicolon-separated clauses:
//
//	events=query,batch;tags=tenant-a,tenant-b
//
// An empty spec (or an omitted clause) allows every event / every tag.
func ParseAuditFilter(spec string) (AuditFilter, error) {
	var f AuditFilter
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return f, fmt.Errorf("audit filter clause %q: want key=v1,v2", clause)
		}
		set := map[string]bool{}
		for _, v := range strings.Split(val, ",") {
			if v = strings.TrimSpace(v); v != "" {
				set[v] = true
			}
		}
		switch strings.TrimSpace(key) {
		case "events":
			f.events = set
		case "tags":
			f.tags = set
		default:
			return f, fmt.Errorf("audit filter clause %q: unknown key (want events or tags)", clause)
		}
	}
	return f, nil
}

// Allow reports whether a record with the given event and tag passes the
// filter.
func (f AuditFilter) Allow(event, tag string) bool {
	if len(f.events) > 0 && !f.events[event] {
		return false
	}
	if len(f.tags) > 0 && !f.tags[tag] {
		return false
	}
	return true
}

// AuditLog writes audit records as NDJSON through a bounded asynchronous
// ring: Record marshals and enqueues without ever blocking the serving
// path — when the writer cannot keep up and the ring fills, records are
// dropped and counted instead. Close drains what was accepted.
//
// A nil *AuditLog is a valid no-op (auditing disabled).
type AuditLog struct {
	filter  AuditFilter
	ch      chan []byte
	dropped atomic.Uint64
	written atomic.Uint64

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	werr   error
}

// DefaultAuditRing is the default ring capacity (records in flight).
const DefaultAuditRing = 1024

// NewAuditLog starts an audit log writing to w through a ring of the
// given capacity (0 means DefaultAuditRing). The caller owns closing w
// after Close returns.
func NewAuditLog(w io.Writer, filter AuditFilter, ring int) *AuditLog {
	if ring <= 0 {
		ring = DefaultAuditRing
	}
	a := &AuditLog{
		filter: filter,
		ch:     make(chan []byte, ring),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		for line := range a.ch {
			if a.werr != nil {
				continue // sink broken; keep draining so Close terminates
			}
			if _, err := w.Write(line); err != nil {
				a.werr = err
				continue
			}
			a.written.Add(1)
		}
	}()
	return a
}

// Record filters, marshals and enqueues one audit record. It never
// blocks: a full ring drops the record and increments Dropped. Nil-safe.
func (a *AuditLog) Record(rec AuditRecord) {
	if a == nil {
		return
	}
	if !a.filter.Allow(rec.Event, rec.Tag) {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		a.dropped.Add(1)
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		a.dropped.Add(1)
		return
	}
	select {
	case a.ch <- line:
	default:
		a.dropped.Add(1)
	}
	a.mu.Unlock()
}

// Dropped returns how many records were discarded because the ring was
// full (writer backpressure) or the log was closed.
func (a *AuditLog) Dropped() uint64 {
	if a == nil {
		return 0
	}
	return a.dropped.Load()
}

// Written returns how many records reached the writer successfully.
func (a *AuditLog) Written() uint64 {
	if a == nil {
		return 0
	}
	return a.written.Load()
}

// closeDrainTimeout bounds how long Close waits for the writer to drain
// the accepted backlog: a wedged sink (the very condition the ring
// protects serving from) must not also wedge process shutdown.
const closeDrainTimeout = 2 * time.Second

// Close stops accepting records, waits (bounded) for the accepted backlog
// to drain to the writer and returns the first write error seen, or an
// error if the writer was still wedged at the deadline. Nil-safe;
// idempotent.
func (a *AuditLog) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		close(a.ch)
	}
	a.mu.Unlock()
	select {
	case <-a.done:
		return a.werr
	case <-time.After(closeDrainTimeout):
		return fmt.Errorf("audit log: writer did not drain within %v", closeDrainTimeout)
	}
}
