// Package obs is the engine's observability substrate: query-scoped span
// traces, a dependency-free Prometheus-text-exposition metrics registry,
// a structured NDJSON audit log, and a small leveled logger.
//
// The package is deliberately self-contained (stdlib only) and designed
// around two cost rules:
//
//   - Disabled must be (almost) free. Tracing is carried on the context as
//     a *Span; every Span method is nil-safe, so an untraced query pays one
//     ctx lookup plus a nil check per instrumentation point — no
//     allocation, no branch misprediction storm in hot loops.
//   - Hot-path increments must not allocate. Counters, gauges and
//     histogram observations are single atomic operations on
//     pre-registered instruments; all formatting work happens at scrape
//     time.
//
// The three facilities are independent but share the vocabulary the rest
// of the engine threads through: serve wires all of them, core/plan/
// cluster carry spans, and plancache/persist/cluster own registry
// instruments in place of hand-rolled counters (so /stats and /metrics
// are two renderings of one bookkeeping system).
package obs
