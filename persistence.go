package beas

import (
	"context"
	"fmt"
	"path/filepath"

	"repro/internal/access"
	"repro/internal/persist"
)

// This file is the public face of the persistence subsystem
// (internal/persist): versioned snapshots of the built ladders, a
// write-ahead log for incremental maintenance, and warm starts that skip
// the offline index construction entirely. The ladders are exactly the
// asset the paper says to precompute once and amortise across unboundedly
// many α-bounded queries — a restart that rebuilds them throws that
// amortisation away, so a production deployment snapshots them instead.

// PersistStats is a point-in-time snapshot of a persisted system's
// durability counters (WAL size, replay, checkpoints).
type PersistStats = persist.Stats

// Op is one maintenance operation (insert or delete) against a named
// relation; see System.Apply.
type Op = access.Op

// Maintenance operation kinds for Op.Kind.
const (
	// OpInsert appends Op.Tuple to the relation.
	OpInsert = access.OpInsert
	// OpDelete removes one occurrence of Op.Tuple from the relation.
	OpDelete = access.OpDelete
)

// persistConfig collects the OpenPersisted options.
type persistConfig struct {
	build             func(*Database) (*AccessSchema, error)
	shards            int
	checkpointEvery   int
	checkpointRetries int
	sync              bool
	logf              func(format string, args ...any)
}

// PersistOption tunes OpenPersisted.
type PersistOption func(*persistConfig)

// WithSchemaBuilder sets the access-schema constructor used on a cold start
// (no snapshot in the directory yet). The default builds the generic At.
// Warm starts restore the persisted ladders and never invoke the builder.
func WithSchemaBuilder(build func(*Database) (*AccessSchema, error)) PersistOption {
	return func(c *persistConfig) { c.build = build }
}

// WithPersistShards re-partitions restored ladders across n shards (0, the
// default, keeps each ladder's stored count). Partitioning is a
// deterministic function of the group key hash, so the shard count never
// changes what a fetch returns.
func WithPersistShards(n int) PersistOption {
	return func(c *persistConfig) { c.shards = n }
}

// WithCheckpointEvery sets how many WAL records accumulate before the
// background checkpointer writes a fresh snapshot and truncates the log.
// 0 keeps persist.DefaultCheckpointEvery; negative disables automatic
// checkpoints (System.Checkpoint still works).
func WithCheckpointEvery(n int) PersistOption {
	return func(c *persistConfig) { c.checkpointEvery = n }
}

// WithWALSync forces an fsync after every logged maintenance operation,
// trading update latency for durability against machine (not just process)
// crashes.
func WithWALSync() PersistOption {
	return func(c *persistConfig) { c.sync = true }
}

// WithCheckpointRetries sets how many consecutive checkpoint failures the
// background checkpointer tolerates (retrying with capped exponential
// backoff) before opening its circuit: automatic checkpoints stop and the
// system serves memory-only until an explicit Checkpoint succeeds. 0 keeps
// persist.DefaultCheckpointRetries; negative means the first failure opens
// the circuit.
func WithCheckpointRetries(n int) PersistOption {
	return func(c *persistConfig) { c.checkpointRetries = n }
}

// WithPersistLogf routes the durability state-transition log lines
// (checkpoint retrying, circuit open/closed, WAL degradation) to logf
// instead of the standard logger.
func WithPersistLogf(logf func(format string, args ...any)) PersistOption {
	return func(c *persistConfig) { c.logf = logf }
}

// OpenPersisted builds a System bound to a persistence directory. When the
// directory holds a snapshot, the database contents and ladders are
// restored from it and the maintenance WAL is replayed — a warm start that
// skips the offline index build. Otherwise the schema is built cold (via
// WithSchemaBuilder, default BuildAt) and an initial snapshot is written so
// the next start is warm. The db must hold the same dataset the snapshot
// was taken over (same relations and schemas); its tuple contents are
// replaced by the snapshot's on a warm start. Cancelling ctx abandons the
// open mid-way.
func OpenPersisted(ctx context.Context, db *Database, dir string, opts ...PersistOption) (*System, error) {
	cfg := persistConfig{build: access.BuildAt}
	for _, opt := range opts {
		opt(&cfg)
	}
	return openPersisted(ctx, db, dir, cfg)
}

// OpenPersistedSchema is OpenPersisted for a schema-only database: db holds
// the dataset's relations with no tuples, and populate generates their
// contents. On a warm start the snapshot in dir supplies the tuples, so
// populate never runs — dataset generation is skipped along with the offline
// index build (this is what lets `beasd -data` warm starts go straight from
// snapshot to serving). On a cold start populate runs first, then the schema
// builder (WithSchemaBuilder, default BuildAt) over the populated database,
// and the initial snapshot captures the result for the next start.
func OpenPersistedSchema(ctx context.Context, db *Database, dir string, populate func(*Database) error, opts ...PersistOption) (*System, error) {
	cfg := persistConfig{build: access.BuildAt}
	for _, opt := range opts {
		opt(&cfg)
	}
	build := cfg.build
	cfg.build = func(db *Database) (*AccessSchema, error) {
		if populate != nil {
			if err := populate(db); err != nil {
				return nil, err
			}
		}
		return build(db)
	}
	return openPersisted(ctx, db, dir, cfg)
}

// openPersisted binds the configured store: warm from dir's snapshot + WAL,
// or cold via cfg.build followed by an initial snapshot.
func openPersisted(ctx context.Context, db *Database, dir string, cfg persistConfig) (*System, error) {
	st, as, _, err := persist.OpenStore(ctx, db, dir, cfg.build, persist.Options{
		Shards:            cfg.shards,
		CheckpointEvery:   cfg.checkpointEvery,
		CheckpointRetries: cfg.checkpointRetries,
		Sync:              cfg.sync,
		Logf:              cfg.logf,
	})
	if err != nil {
		return nil, err
	}
	sys := Open(db, as)
	sys.store = st
	return sys, nil
}

// Persisted reports whether the system is bound to a persistence directory
// (built by OpenPersisted).
func (s *System) Persisted() bool { return s.store != nil }

// PersistStats returns the durability counters of a persisted system (the
// zero value when the system is not persisted).
func (s *System) PersistStats() PersistStats {
	if s.store == nil {
		return PersistStats{}
	}
	return s.store.Stats()
}

// Snapshot writes a versioned, checksummed snapshot of the system (base
// relations + every ladder) to dir. For a persisted system snapshotting
// into its own directory this is a checkpoint: the WAL is truncated once
// the snapshot covers it. Any other directory gets a standalone snapshot —
// a consistent copy usable by OpenPersisted elsewhere — and the system's
// own WAL is untouched. On a persisted system both paths serialise against
// concurrent maintenance; an in-memory system follows the single-writer
// discipline of maintenance.
func (s *System) Snapshot(ctx context.Context, dir string) error {
	if s.store != nil {
		a, err1 := filepath.Abs(dir)
		b, err2 := filepath.Abs(s.store.Dir())
		if err1 == nil && err2 == nil && a == b {
			return s.store.Checkpoint(ctx)
		}
		return s.store.SaveTo(ctx, dir)
	}
	return persist.Save(ctx, s.scheme.DB(), s.scheme.Access(), dir)
}

// Checkpoint snapshots a persisted system into its directory and truncates
// the WAL. It fails when the system was not built by OpenPersisted.
func (s *System) Checkpoint(ctx context.Context) error {
	if s.store == nil {
		return fmt.Errorf("beas: system is not persisted (use OpenPersisted)")
	}
	return s.store.Checkpoint(ctx)
}

// Apply runs a batch of maintenance operations: each is appended to the WAL
// (when the system is persisted) before the database and the affected
// ladder groups are updated, and every group touched by the batch is
// rebuilt exactly once — a storm of updates against one hot group costs a
// single reconstruction. applied[i] reports whether op i changed anything
// (false only for a delete whose tuple was missing). Maintenance follows a
// single-writer discipline: do not call concurrently with other maintenance
// or with queries.
func (s *System) Apply(ctx context.Context, ops []Op) (applied []bool, err error) {
	if s.store != nil {
		applied, err = s.store.Apply(ctx, ops)
	} else {
		if err = ctx.Err(); err != nil {
			return nil, err
		}
		applied, err = s.scheme.Access().Apply(s.scheme.DB(), ops)
	}
	// Plans bake in |D|-derived budgets and ladder metadata; regenerate.
	s.scheme.InvalidatePlans()
	return applied, err
}

// Insert appends the tuple to the named relation and incrementally updates
// every ladder indexing it, write-ahead logged when persisted.
func (s *System) Insert(ctx context.Context, rel string, t Tuple) error {
	_, err := s.Apply(ctx, []Op{{Kind: OpInsert, Rel: rel, Tuple: t}})
	return err
}

// Delete removes one occurrence of the tuple from the named relation and
// updates the affected ladder groups, write-ahead logged when persisted. It
// reports whether a tuple was removed.
func (s *System) Delete(ctx context.Context, rel string, t Tuple) (bool, error) {
	applied, err := s.Apply(ctx, []Op{{Kind: OpDelete, Rel: rel, Tuple: t}})
	if err != nil {
		return false, err
	}
	return applied[0], nil
}

// Close releases the persistence resources of a system built by
// OpenPersisted (stopping the background checkpointer and closing the WAL)
// and is a no-op otherwise. It does not write a final snapshot — call
// Checkpoint first for a graceful shutdown. Idempotent.
func (s *System) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// LadderStat describes one ladder's resident footprint, for operators
// sizing snapshot thresholds (see /stats in cmd/beasd).
type LadderStat struct {
	// Relation, X and Y identify the ladder R(X → Y, ·, ·).
	Relation string
	X, Y     []string
	// Shards is the ladder's partition count.
	Shards int
	// Groups is the number of distinct X-values indexed.
	Groups int
	// Levels is the number of template levels (MaxK + 1).
	Levels int
	// ResidentTuples is the number of representative samples materialised
	// across all groups and levels (the in-memory fetch views).
	ResidentTuples int
	// MaxGroupDistinct is the largest group's distinct-Y count (the N of
	// the ladder's access-constraint view).
	MaxGroupDistinct int
}

// LadderStats returns the per-ladder footprint of the system's access
// schema, in schema order.
func (s *System) LadderStats() []LadderStat {
	ladders := s.scheme.Access().Ladders
	out := make([]LadderStat, 0, len(ladders))
	for _, l := range ladders {
		out = append(out, LadderStat{
			Relation:         l.RelName,
			X:                append([]string(nil), l.X...),
			Y:                append([]string(nil), l.Y...),
			Shards:           l.Shards(),
			Groups:           l.NumGroups(),
			Levels:           l.MaxK() + 1,
			ResidentTuples:   l.IndexSize(),
			MaxGroupDistinct: l.MaxGroupDistinct(),
		})
	}
	return out
}
