// Analytics runs an exploratory-dashboard workload over the TPCH-like
// dataset: aggregate queries (count / sum / avg / max) answered under a
// small resource ratio, compared with the exact results. This is the
// paper's "small businesses analysing big data with limited resources"
// use case: every query touches at most α|D| tuples, unpredictably chosen
// queries included.
package main

import (
	"context"
	"fmt"
	"log"

	beas "repro"
	"repro/internal/workload"
)

func main() {
	d := workload.TPCH(4, 42)
	as, err := d.AccessSchema()
	if err != nil {
		log.Fatal(err)
	}
	sys := beas.Open(d.DB, as)
	fmt.Printf("TPCH-like dataset: |D| = %d tuples\n", d.DB.Size())

	const alpha = 0.02
	queries := []struct{ label, sql string }{
		{"orders per status",
			`select o.status, count(o.ok) as cnt from orders as o group by o.status`},
		{"avg order value per priority",
			`select o.priority, avg(o.totalprice) as avgv from orders as o group by o.priority`},
		{"max part price per brand",
			`select p.brand, max(p.pprice) as maxp from part as p group by p.brand`},
		{"revenue by customer segment (join)",
			`select c.segment, sum(o.totalprice) as rev
			 from orders as o, customer as c
			 where o.ck = c.ck group by c.segment`},
	}

	for _, q := range queries {
		expr, err := beas.ParseSQL(q.sql)
		if err != nil {
			log.Fatal(err)
		}
		ans, plan, err := sys.Query(context.Background(), expr,
			beas.WithAlpha(alpha), beas.WithTag("dashboard"))
		if err != nil {
			log.Fatal(err)
		}
		exact, err := beas.Exact(d.DB, expr)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := beas.Accuracy(d.DB, expr, ans.Rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s (alpha=%g, budget %d, accessed %d, eta=%.3f, RC=%.3f)\n",
			q.label, alpha, plan.Budget, ans.Stats.Accessed, ans.Eta, rep.Accuracy)
		fmt.Printf("%-28s %-22s %s\n", "group", "approx", "exact")
		exactByKey := map[string]string{}
		for _, t := range exact.Tuples {
			exactByKey[t[0].String()] = t[len(t)-1].String()
		}
		for _, t := range ans.Rel.Tuples {
			key := t[0].String()
			fmt.Printf("%-28s %-22s %s\n", key, t[len(t)-1].String(), exactByKey[key])
		}
	}

	// Tagged calls are broken out in the system's per-tag stats — the same
	// numbers beasd exposes per tenant on /stats.
	for tag, st := range sys.QueryStats() {
		fmt.Printf("\ntag %q: %d queries, %d tuples accessed, %v total\n",
			tag, st.Queries, st.Accessed, st.Total)
	}
}
