// Graphsearch reproduces the paper's motivating scenario (§1, Example 1):
// Facebook-style graph search over person / friend / poi. Query Q1 finds
// affordable hotels in cities where friends live; Q2 finds the friends'
// cities. Q2 is boundedly evaluable (exact under a tiny budget no matter
// how big the data); Q1 degrades gracefully as α shrinks, with the
// deterministic bound η tracking the loss.
package main

import (
	"context"
	"fmt"
	"log"

	beas "repro"
	"repro/internal/fixture"
)

func main() {
	// A larger instance of the Example 1 schema plus the access schema
	// A0: constraints ϕ1 = friend(pid -> fid), ϕ2 = person(pid -> city)
	// and the template ladder poi({type, city} -> {price, address}).
	db := fixture.Example1(2017, 400, 4000)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		log.Fatal(err)
	}
	sys := beas.Open(db, as)
	fmt.Printf("|D| = %d tuples; access schema: %d ladders, %d templates\n\n",
		db.Size(), as.Size(), as.NumTemplates())

	// Pick a person with several friends as "me".
	friend := db.MustRelation("friend")
	counts := map[int64]int{}
	for _, t := range friend.Tuples {
		pid, _ := t[0].AsInt()
		counts[pid]++
	}
	var me int64
	for pid, n := range counts {
		if n >= 4 {
			me = pid
			break
		}
	}

	// --- Q2: cities where my friends live (boundedly evaluable) --------
	q2 := fixture.Q2(me)
	alphaExact, err := sys.MinAlphaExact(q2)
	if err != nil {
		log.Fatal(err)
	}
	ans, _, err := sys.Query(context.Background(), q2, beas.WithAlpha(alphaExact))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q2 (friends' cities) is boundedly evaluable: exact at alpha = %.5f (%d tuples)\n",
		alphaExact, int(alphaExact*float64(db.Size())))
	for _, t := range ans.Rel.Tuples {
		fmt.Println("   ", t)
	}

	// --- Q1: hotels <= $95 in friends' cities, under shrinking α -------
	q1 := fixture.Q1(me, 95)
	fmt.Printf("\nQ1 (affordable hotels near friends), shrinking alpha:\n")
	fmt.Printf("%10s %10s %10s %10s %10s %8s\n", "alpha", "budget", "accessed", "eta", "accuracy", "answers")
	for _, alpha := range []float64{1.0, 0.2, 0.05, 0.02, 0.01} {
		ans, plan, err := sys.Query(context.Background(), q1, beas.WithAlpha(alpha))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := beas.Accuracy(db, q1, ans.Rel)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.3f %10d %10d %10.4f %10.4f %8d\n",
			alpha, plan.Budget, ans.Stats.Accessed, ans.Eta, rep.Accuracy, ans.Rel.Len())
	}
	fmt.Println("\nNote: the realised accuracy always dominates the bound eta, and both")
	fmt.Println("rise with alpha — the Approximability Theorem at work.")
}
