// Quickstart: build a tiny database, open a BEAS system with the generic
// access schema At, and answer a SQL query with a resource budget.
package main

import (
	"context"
	"fmt"
	"log"

	beas "repro"
)

func main() {
	// A database of points of interest. Each attribute declares a
	// distance: trivial for identifiers (never relaxed), discrete (0/1)
	// for categories, and scaled |a-b| for numbers.
	poi := beas.NewRelation(beas.MustSchema("poi",
		beas.Attr("address", beas.KindString, beas.Discrete()),
		beas.Attr("type", beas.KindString, beas.Discrete()),
		beas.Attr("city", beas.KindString, beas.Trivial()),
		beas.Attr("price", beas.KindFloat, beas.Numeric(100)),
	))
	rows := []struct {
		addr, typ, city string
		price           float64
	}{
		{"1 Main St", "hotel", "NYC", 95},
		{"2 Oak Ave", "hotel", "NYC", 99},
		{"3 Elm Rd", "hotel", "Chicago", 80},
		{"4 Pine Ln", "bar", "NYC", 20},
		{"5 Lake Dr", "hotel", "Boston", 200},
		{"6 Hill Ct", "hotel", "Chicago", 150},
		{"7 Bay Rd", "cafe", "Boston", 12},
		{"8 Park Pl", "hotel", "NYC", 120},
	}
	for _, r := range rows {
		poi.MustAppend(beas.Tuple{
			beas.String(r.addr), beas.String(r.typ), beas.String(r.city), beas.Float(r.price),
		})
	}
	db := beas.NewDatabase()
	db.MustAdd(poi)

	// Open with the generic access schema At: by Theorem 1 every query on
	// this database is now approximable with bounded resources.
	sys, err := beas.OpenAt(db)
	if err != nil {
		log.Fatal(err)
	}

	// Queries are context-first: cancellation and deadlines propagate into
	// the executor. Options set the resource bound per call.
	ctx := context.Background()
	sql := `select h.address, h.price from poi as h
	        where h.type = 'hotel' and h.price <= 100`
	for _, alpha := range []float64{0.25, 0.5, 1.0} {
		ans, plan, err := sys.QuerySQL(ctx, sql, beas.WithAlpha(alpha))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha=%.2f: budget %d tuples, accessed %d, eta=%.3f exact=%v\n",
			alpha, plan.Budget, ans.Stats.Accessed, ans.Eta, ans.Exact)
		for rows := ans.Rows(); ; {
			t, ok := rows.Next()
			if !ok {
				break
			}
			fmt.Println("   ", t)
		}
	}
}
