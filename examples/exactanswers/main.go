// Exactanswers demonstrates bounded evaluability (§2.2, Exp-3): queries
// whose plans use access constraints only are answered exactly with a
// budget independent of |D| — so the resource ratio α_exact needed for
// exact answers shrinks as the data grows, exactly the trend of Fig. 6(j).
package main

import (
	"context"
	"fmt"
	"log"

	beas "repro"
	"repro/internal/workload"
)

func main() {
	// A key/foreign-key lookup query: lineitems of one order with their
	// part brands. Every step follows an access constraint, so the data
	// needed is bounded regardless of |D|.
	sql := `select l.qty, l.extprice, p.brand
	        from lineitem as l, part as p
	        where l.ok = 42 and l.pk = p.pk`

	fmt.Println("bounded evaluability: alpha_exact shrinks as |D| grows")
	fmt.Printf("%8s %12s %14s %14s\n", "sigma", "|D|", "alpha_exact", "budget(tuples)")
	for _, sf := range []int{2, 4, 8, 16} {
		d := workload.TPCH(sf, 7)
		as, err := d.AccessSchema()
		if err != nil {
			log.Fatal(err)
		}
		sys := beas.Open(d.DB, as)
		q, err := beas.ParseSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		alpha, err := sys.MinAlphaExact(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %14.6f %14d\n",
			sf, d.DB.Size(), alpha, int(alpha*float64(d.DB.Size())+0.5))

		// Confirm the plan really is exact at that budget — bound the call
		// by the absolute tuple budget rather than the ratio.
		ans, _, err := sys.Query(context.Background(), q,
			beas.WithBudget(int(alpha*float64(d.DB.Size())+0.5)))
		if err != nil {
			log.Fatal(err)
		}
		if !ans.Exact {
			log.Fatalf("sigma=%d: plan at alpha_exact was not exact", sf)
		}
	}
	fmt.Println("\nThe budget stays (near) constant while |D| grows — scale independence.")
}
