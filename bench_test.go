// Benchmarks: one per table/figure of the paper's evaluation (Fig. 6(a)–(l)),
// plus micro-benchmarks for the pipeline stages. Each figure benchmark runs
// its experiment end to end at the Tiny configuration (so `go test -bench .`
// stays fast) and logs the resulting table once; the paper-scale tables are
// regenerated with `go run ./cmd/beasbench` and recorded in EXPERIMENTS.md.
package beas_test

import (
	"context"
	"testing"

	beas "repro"
	"repro/internal/bench"
	"repro/internal/fixture"
	"repro/internal/query"
	"repro/internal/workload"
)

func benchFigure(b *testing.B, f func(bench.Config) (*bench.Table, error)) {
	b.Helper()
	cfg := bench.Tiny
	for i := 0; i < b.N; i++ {
		tbl, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.Format())
		}
	}
}

// BenchmarkFig6a regenerates Fig. 6(a): RC accuracy on TPCH, varying α.
func BenchmarkFig6a(b *testing.B) { benchFigure(b, bench.Fig6a) }

// BenchmarkFig6b regenerates Fig. 6(b): RC accuracy on TFACC, varying α.
func BenchmarkFig6b(b *testing.B) { benchFigure(b, bench.Fig6b) }

// BenchmarkFig6c regenerates Fig. 6(c): RC accuracy on AIRCA, varying α.
func BenchmarkFig6c(b *testing.B) { benchFigure(b, bench.Fig6c) }

// BenchmarkFig6d regenerates Fig. 6(d): MAC accuracy on TPCH, varying α.
func BenchmarkFig6d(b *testing.B) { benchFigure(b, bench.Fig6d) }

// BenchmarkFig6e regenerates Fig. 6(e): RC accuracy on TPCH, varying |D|.
func BenchmarkFig6e(b *testing.B) { benchFigure(b, bench.Fig6e) }

// BenchmarkFig6f regenerates Fig. 6(f): MAC accuracy on TPCH, varying |D|.
func BenchmarkFig6f(b *testing.B) { benchFigure(b, bench.Fig6f) }

// BenchmarkFig6g regenerates Fig. 6(g): RC accuracy on TFACC, varying #-sel.
func BenchmarkFig6g(b *testing.B) { benchFigure(b, bench.Fig6g) }

// BenchmarkFig6h regenerates Fig. 6(h): RC accuracy on TFACC, varying #-prod.
func BenchmarkFig6h(b *testing.B) { benchFigure(b, bench.Fig6h) }

// BenchmarkFig6i regenerates Fig. 6(i): RC accuracy on TFACC per query type.
func BenchmarkFig6i(b *testing.B) { benchFigure(b, bench.Fig6i) }

// BenchmarkFig6j regenerates Fig. 6(j): α_exact for exact answers vs |D|.
func BenchmarkFig6j(b *testing.B) { benchFigure(b, bench.Fig6j) }

// BenchmarkFig6k regenerates Fig. 6(k): index sizes as multiples of |D|.
func BenchmarkFig6k(b *testing.B) { benchFigure(b, bench.Fig6k) }

// BenchmarkFig6l regenerates Fig. 6(l): efficiency and scalability on TPCH.
func BenchmarkFig6l(b *testing.B) { benchFigure(b, bench.Fig6l) }

// --- micro-benchmarks of the pipeline stages ----------------------------

func benchSystem(b *testing.B) (*beas.System, *beas.Database, beas.Query) {
	b.Helper()
	db := fixture.Example1(5, 200, 2000)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		b.Fatal(err)
	}
	return beas.Open(db, as), db, fixture.Q1(3, 95)
}

// BenchmarkPlanGeneration measures C3: α-bounded plan generation, which the
// paper reports at under 200ms per query (Exp-5); ours is far below that at
// laptop scale.
func BenchmarkPlanGeneration(b *testing.B) {
	sys, _, q := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Plan(context.Background(), q, beas.WithAlpha(0.01)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanExecution measures C4: executing the α-bounded plan.
func BenchmarkPlanExecution(b *testing.B) {
	sys, _, q := benchSystem(b)
	p, err := sys.Plan(context.Background(), q, beas.WithAlpha(0.01))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiLeafJoin measures executing a two-leaf plan — a union of
// two 3-atom join queries — end to end: fetch, hash join, distinct and
// union combination. This is the allocation benchmark tracked in
// BENCH_*.json across PRs; the workload is shared with the harness's
// multi_leaf_join entry (bench.MultiLeafJoinQuery) so both numbers measure
// the same query.
func BenchmarkMultiLeafJoin(b *testing.B) {
	sys, _, _ := benchSystem(b)
	p, err := sys.Plan(context.Background(), bench.MultiLeafJoinQuery(), beas.WithAlpha(0.2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Execute(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactEvaluation measures the full-scan comparator (the paper's
// PostgreSQL/MySQL stand-in) on the same query, for the Exp-5 contrast.
func BenchmarkExactEvaluation(b *testing.B) {
	_, db, q := benchSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := beas.Exact(db, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessSchemaBuild measures offline index construction (C1).
func BenchmarkAccessSchemaBuild(b *testing.B) {
	d := workload.TPCH(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.AccessSchema(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRCMeasure measures the accuracy evaluator used by experiments.
func BenchmarkRCMeasure(b *testing.B) {
	sys, db, q := benchSystem(b)
	ans, _, err := sys.Query(context.Background(), q, beas.WithAlpha(0.05))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := beas.Accuracy(db, q, ans.Rel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinAlphaExact measures the Exp-3 search for the exact-answer
// resource ratio.
func BenchmarkMinAlphaExact(b *testing.B) {
	sys, _, _ := benchSystem(b)
	q := fixture.Q2(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.MinAlphaExact(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLParse measures the SQL front end.
func BenchmarkSQLParse(b *testing.B) {
	sql := `select h.address, h.price from poi as h, friend as f, person as p
	        where f.pid = 0 and f.fid = p.pid and p.city = h.city
	        and h.type = 'hotel' and h.price <= 95`
	for i := 0; i < b.N; i++ {
		if _, err := beas.ParseSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures query generation.
func BenchmarkWorkloadGeneration(b *testing.B) {
	d := workload.TPCH(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Workload(10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkExpr query.Expr

// BenchmarkQueryRender measures query pretty-printing (used in reports).
func BenchmarkQueryRender(b *testing.B) {
	q := fixture.Q1(3, 95)
	for i := 0; i < b.N; i++ {
		if s := beas.RenderSQL(q); s == "" {
			b.Fatal("empty")
		}
	}
	sinkExpr = q
}

// BenchmarkConcurrentQuery measures serving throughput of one shared
// System under parallel mixed traffic — the online path of the Fig. 2
// architecture under load. Repeated (query, α) pairs must be served from
// the plan cache; the benchmark fails if no hits are recorded.
func BenchmarkConcurrentQuery(b *testing.B) {
	db := fixture.Example1(5, 200, 150)
	as, err := fixture.SchemaA0(db)
	if err != nil {
		b.Fatal(err)
	}
	sys := beas.Open(db, as)
	queries := make([]beas.Query, 8)
	for i := range queries {
		queries[i] = fixture.Q1(int64(i), 95)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i%len(queries)]
			if _, _, err := sys.Query(context.Background(), q, beas.WithAlpha(0.2)); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	st := sys.PlanCacheStats()
	if b.N > 2*len(queries) && st.Hits == 0 {
		b.Fatalf("no plan-cache hits under repeated workload: %+v", st)
	}
	b.ReportMetric(st.HitRate()*100, "cache-hit-%")
}
